#include "insched/mip/cuts.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "insched/lp/factor.hpp"

namespace insched::mip {
namespace {

constexpr double kEps = 1e-9;

double frac(double v) { return v - std::floor(v); }

bool binary_like(const lp::Column& c) {
  return c.type != lp::VarType::kContinuous && c.lower >= -1e-12 && c.upper <= 1.0 + 1e-12;
}

/// Profit-space knapsack DP used for exact sequential lifting: minw_[p] is
/// the minimum weight of an item subset with total profit exactly p.
class LiftingDp {
 public:
  void reset(double capacity_hint) {
    (void)capacity_hint;
    minw_.assign(1, 0.0);
  }
  void add_item(int profit, double weight) {
    const std::size_t old = minw_.size();
    minw_.resize(old + static_cast<std::size_t>(profit),
                 std::numeric_limits<double>::infinity());
    for (std::size_t p = minw_.size(); p-- > 0;) {
      if (p < static_cast<std::size_t>(profit)) break;
      const double via = minw_[p - static_cast<std::size_t>(profit)] + weight;
      if (via < minw_[p]) minw_[p] = via;
    }
  }
  [[nodiscard]] int max_profit(double capacity) const {
    int best = 0;
    for (std::size_t p = 0; p < minw_.size(); ++p)
      if (minw_[p] <= capacity + kEps) best = static_cast<int>(p);
    return best;
  }

 private:
  std::vector<double> minw_;
};

void finalize_entries(Cut& cut) {
  std::sort(cut.entries.begin(), cut.entries.end(),
            [](const lp::RowEntry& a, const lp::RowEntry& b) { return a.column < b.column; });
}

}  // namespace

const char* cut_family_name(CutFamily family) noexcept {
  switch (family) {
    case CutFamily::kCover: return "cover";
    case CutFamily::kLiftedCover: return "lifted_cover";
    case CutFamily::kClique: return "clique";
    case CutFamily::kGomory: return "gomory";
    case CutFamily::kMir: return "mir";
  }
  return "?";
}

std::vector<Cut> generate_mir_cuts(const lp::Model& model, const std::vector<double>& x,
                                   double min_violation, int max_cuts) {
  std::vector<Cut> cuts;
  std::vector<double> divisors;
  for (int i = 0; i < model.num_rows() && static_cast<int>(cuts.size()) < max_cuts; ++i) {
    const lp::Row& row = model.row(i);
    if (row.type != lp::RowType::kLe || row.rhs < 0.0) continue;
    bool knapsack = row.entries.size() >= 2;
    for (const lp::RowEntry& e : row.entries) {
      if (!binary_like(model.column(e.column)) || e.coeff <= 0.0) {
        knapsack = false;
        break;
      }
    }
    if (!knapsack) continue;

    // Divisor candidates: the row's largest distinct coefficients. Rounding
    // by one of the row's own weights is what turns a budget row with
    // near-equal costs into the cardinality bound the tree cannot infer.
    divisors.clear();
    for (const lp::RowEntry& e : row.entries) divisors.push_back(e.coeff);
    std::sort(divisors.begin(), divisors.end(), std::greater<>());
    divisors.erase(std::unique(divisors.begin(), divisors.end(),
                               [](double a, double b) { return std::fabs(a - b) <= 1e-9; }),
                   divisors.end());
    if (divisors.size() > 6) divisors.resize(6);

    Cut best;
    for (double d : divisors) {
      if (d <= kEps) continue;
      const double f0 = frac(row.rhs / d);
      if (f0 < 1e-6 || f0 > 1.0 - 1e-6) continue;  // degenerate: cut == scaled row
      Cut cut;
      cut.type = lp::RowType::kLe;
      cut.family = CutFamily::kMir;
      cut.rhs = std::floor(row.rhs / d);
      double lhs = 0.0;
      for (const lp::RowEntry& e : row.entries) {
        const double q = e.coeff / d;
        const double fj = frac(q);
        double coeff = std::floor(q);
        if (fj > f0) coeff += (fj - f0) / (1.0 - f0);
        if (coeff <= kEps) continue;
        cut.entries.push_back({e.column, coeff});
        lhs += coeff * x[static_cast<std::size_t>(e.column)];
      }
      cut.violation = lhs - cut.rhs;
      if (cut.entries.empty() || cut.violation <= min_violation) continue;
      if (cut.violation > best.violation) best = std::move(cut);
    }
    if (!best.entries.empty()) {
      finalize_entries(best);
      cuts.push_back(std::move(best));
    }
  }
  return cuts;
}

std::vector<Cut> generate_cover_cuts(const lp::Model& model, const std::vector<double>& x,
                                     double min_violation, bool lift) {
  std::vector<Cut> cuts;
  std::vector<int> order;
  std::vector<char> in_cover;
  LiftingDp dp;
  for (int i = 0; i < model.num_rows(); ++i) {
    const lp::Row& row = model.row(i);
    if (row.type != lp::RowType::kLe) continue;

    // Candidate knapsack: all entries binary with positive coefficients.
    bool knapsack = !row.entries.empty();
    for (const lp::RowEntry& e : row.entries) {
      if (!binary_like(model.column(e.column)) || e.coeff <= 0.0) {
        knapsack = false;
        break;
      }
    }
    if (!knapsack || row.rhs < 0.0) continue;
    const auto coeff = [&](int idx) {
      return row.entries[static_cast<std::size_t>(idx)].coeff;
    };
    const auto value = [&](int idx) {
      return x[static_cast<std::size_t>(row.entries[static_cast<std::size_t>(idx)].column)];
    };

    // Greedy minimal cover: add items by descending LP value until the
    // coefficient sum exceeds the rhs. Everything below works with entry
    // indices so coefficient lookups are O(1) instead of rescanning the row.
    order.resize(row.entries.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return value(a) > value(b); });
    double weight = 0.0;
    std::vector<int> cover;  // entry indices
    for (int idx : order) {
      cover.push_back(idx);
      weight += coeff(idx);
      if (weight > row.rhs + kEps) break;
    }
    if (weight <= row.rhs + kEps) continue;  // row can never bind: no cover

    // Minimalize: drop items that keep the cover property, lightest first.
    std::sort(cover.begin(), cover.end(), [&](int a, int b) { return coeff(a) < coeff(b); });
    for (std::size_t k = 0; k < cover.size();) {
      if (weight - coeff(cover[k]) > row.rhs + kEps) {
        weight -= coeff(cover[k]);
        cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        ++k;
      }
    }
    const std::size_t r = cover.size();
    if (r < 2) continue;

    Cut cut;
    cut.type = lp::RowType::kLe;
    cut.rhs = static_cast<double>(r) - 1.0;
    double lhs = 0.0;
    in_cover.assign(row.entries.size(), 0);
    for (int idx : cover) {
      in_cover[static_cast<std::size_t>(idx)] = 1;
      cut.entries.push_back(
          lp::RowEntry{row.entries[static_cast<std::size_t>(idx)].column, 1.0});
      lhs += value(idx);
    }

    if (lift) {
      // Exact sequential lifting of variables outside the cover. A variable
      // only gets a positive coefficient when setting it to 1 displaces at
      // least two cover items, i.e. a_j > rhs - (weight of the r-1 lightest
      // cover items); candidates are processed heaviest-first and each
      // lifted item joins the DP so later coefficients stay exact.
      double prefix_all_but_heaviest = 0.0;  // cover sorted ascending already
      for (std::size_t k = 0; k + 1 < r; ++k) prefix_all_but_heaviest += coeff(cover[k]);
      std::vector<int> outside;
      for (std::size_t idx = 0; idx < row.entries.size(); ++idx) {
        if (in_cover[idx]) continue;
        if (coeff(static_cast<int>(idx)) > row.rhs - prefix_all_but_heaviest + kEps)
          outside.push_back(static_cast<int>(idx));
      }
      if (!outside.empty()) {
        std::sort(outside.begin(), outside.end(),
                  [&](int a, int b) { return coeff(a) > coeff(b); });
        constexpr std::size_t kMaxLifted = 32;
        if (outside.size() > kMaxLifted) outside.resize(kMaxLifted);
        dp.reset(row.rhs);
        for (int idx : cover) dp.add_item(1, coeff(idx));
        for (int idx : outside) {
          const double cap = row.rhs - coeff(idx);
          const int alpha =
              static_cast<int>(r) - 1 - (cap < -kEps ? 0 : dp.max_profit(cap));
          if (alpha <= 0) continue;
          // cap < 0 means x_j = 1 is infeasible for the row on its own; the
          // strongest valid coefficient is then rhs of the cut itself.
          const int a = cap < -kEps ? static_cast<int>(r) - 1 : alpha;
          cut.entries.push_back(
              lp::RowEntry{row.entries[static_cast<std::size_t>(idx)].column,
                           static_cast<double>(a)});
          lhs += static_cast<double>(a) * value(idx);
          cut.family = CutFamily::kLiftedCover;
          dp.add_item(a, coeff(idx));
        }
      }
    }

    cut.violation = lhs - cut.rhs;
    if (cut.violation < min_violation) continue;
    finalize_entries(cut);
    cuts.push_back(std::move(cut));
  }
  std::sort(cuts.begin(), cuts.end(),
            [](const Cut& a, const Cut& b) { return a.violation > b.violation; });
  return cuts;
}

std::vector<Cut> generate_clique_cuts(const lp::Model& model, const std::vector<double>& x,
                                      const ConflictGraph& conflicts, double min_violation,
                                      int max_cuts) {
  std::vector<Cut> cuts;
  if (conflicts.edges() == 0) return cuts;
  const int n = std::min(model.num_columns(), conflicts.columns());
  std::vector<int> cand;
  for (int j = 0; j < n; ++j) {
    if (x[static_cast<std::size_t>(j)] <= 1e-5) continue;
    if (!binary_like(model.column(j))) continue;
    if (conflicts.neighbors(j).empty()) continue;
    cand.push_back(j);
  }
  std::sort(cand.begin(), cand.end(), [&](int a, int b) {
    const double xa = x[static_cast<std::size_t>(a)];
    const double xb = x[static_cast<std::size_t>(b)];
    return xa != xb ? xa > xb : a < b;
  });
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  std::vector<int> clique;
  for (const int seed : cand) {
    if (used[static_cast<std::size_t>(seed)]) continue;
    clique.assign(1, seed);
    double sum = x[static_cast<std::size_t>(seed)];
    for (const int k : cand) {
      if (k == seed) continue;
      bool ok = true;
      for (const int c : clique) {
        if (!conflicts.adjacent(k, c)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      clique.push_back(k);
      sum += x[static_cast<std::size_t>(k)];
    }
    if (clique.size() < 2 || sum - 1.0 < min_violation) continue;
    Cut cut;
    cut.type = lp::RowType::kLe;
    cut.family = CutFamily::kClique;
    cut.rhs = 1.0;
    cut.violation = sum - 1.0;
    for (const int c : clique) {
      cut.entries.push_back(lp::RowEntry{c, 1.0});
      used[static_cast<std::size_t>(c)] = 1;
    }
    finalize_entries(cut);
    cuts.push_back(std::move(cut));
    if (static_cast<int>(cuts.size()) >= max_cuts) break;
  }
  std::sort(cuts.begin(), cuts.end(),
            [](const Cut& a, const Cut& b) { return a.violation > b.violation; });
  return cuts;
}

std::vector<Cut> generate_gomory_cuts(const lp::Model& model, const std::vector<double>& x,
                                      const lp::Basis& basis,
                                      const lp::Factorization* factor_hint, int max_cuts,
                                      double min_violation, long* btrans) {
  std::vector<Cut> cuts;
  const int n = model.num_columns();
  const int m = model.num_rows();
  if (m == 0 || basis.rows() != m || basis.variables() != n + m ||
      static_cast<int>(x.size()) != n)
    return cuts;

  // Structural columns as sparse (row, coeff) lists; also used to rebuild the
  // basis matrix when no factorization snapshot is supplied.
  std::vector<std::vector<lp::LuEntry>> cols(static_cast<std::size_t>(n));
  for (int i = 0; i < m; ++i) {
    for (const lp::RowEntry& e : model.row(i).entries)
      cols[static_cast<std::size_t>(e.column)].push_back(lp::LuEntry{i, e.coeff});
  }

  lp::LuFactors lu;
  if (factor_hint != nullptr && factor_hint->rows() == m) {
    lu.load(*factor_hint);
  } else {
    std::vector<std::vector<lp::LuEntry>> basis_cols(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      const int var = basis.basic[static_cast<std::size_t>(i)];
      if (var < 0 || var >= n + m) return cuts;
      if (var < n)
        basis_cols[static_cast<std::size_t>(i)] = cols[static_cast<std::size_t>(var)];
      else
        basis_cols[static_cast<std::size_t>(i)].push_back(lp::LuEntry{var - n, 1.0});
    }
    if (!lu.factorize(basis_cols, 1e-10)) return cuts;
  }

  // Candidate rows: integer structural variables basic at fractional values,
  // most fractional first.
  struct Candidate {
    int pos;
    int column;
    double dist;  // distance of frac to 1/2 (smaller = better)
  };
  std::vector<Candidate> candidates;
  for (int p = 0; p < m; ++p) {
    const int var = basis.basic[static_cast<std::size_t>(p)];
    if (var < 0 || var >= n) continue;
    if (model.column(var).type == lp::VarType::kContinuous) continue;
    const double f = frac(x[static_cast<std::size_t>(var)]);
    if (f < 0.01 || f > 0.99) continue;
    candidates.push_back(Candidate{p, var, std::fabs(f - 0.5)});
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    return a.dist != b.dist ? a.dist < b.dist : a.pos < b.pos;
  });

  lp::SparseVec br;
  std::vector<double> alpha(static_cast<std::size_t>(n), 0.0);
  std::vector<int> alpha_nz;
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  std::vector<int> d_nz;
  for (const Candidate& cand : candidates) {
    if (static_cast<int>(cuts.size()) >= max_cuts) break;
    // One BTRAN: br = e_pos B^-1, i.e. row `pos` of the basis inverse.
    br.resize(m);
    br.add(cand.pos, 1.0);
    lu.btran(&br);
    if (btrans) ++(*btrans);

    // Tableau row over structural columns: alpha_j = br . A_j, accumulated
    // row-wise over the nonzeros of br (hyper-sparse on staircase models).
    for (const int j : alpha_nz) alpha[static_cast<std::size_t>(j)] = 0.0;
    alpha_nz.clear();
    for (const int i : br.nz) {
      const double w = br.values[static_cast<std::size_t>(i)];
      if (w == 0.0) continue;
      for (const lp::RowEntry& e : model.row(i).entries) {
        const auto j = static_cast<std::size_t>(e.column);
        if (alpha[j] == 0.0) alpha_nz.push_back(e.column);
        alpha[j] += w * e.coeff;
      }
    }

    const double xb = x[static_cast<std::size_t>(cand.column)];
    const double f0 = frac(xb);
    bool reliable = true;

    // GMI in the shifted nonbasic space: each nonbasic variable measured
    // from the bound it sits at (s >= 0), coefficient t = +alpha at lower,
    // -alpha at upper. Accumulate the cut directly in structural space.
    for (const int j : d_nz) d[static_cast<std::size_t>(j)] = 0.0;
    d_nz.clear();
    double rhs = 1.0;  // cut: sum gamma_k s_k >= 1
    const auto add_d = [&](int j, double v) {
      if (v == 0.0) return;
      const auto js = static_cast<std::size_t>(j);
      if (d[js] == 0.0) d_nz.push_back(j);
      d[js] += v;
    };
    const auto gamma_of = [&](double t, bool integral) {
      if (integral) {
        const double ft = frac(t);
        return ft <= f0 + 1e-12 ? ft / f0 : (1.0 - ft) / (1.0 - f0);
      }
      return t >= 0.0 ? t / f0 : -t / (1.0 - f0);
    };

    // Structural nonbasics. Each alpha slot is zeroed as it is consumed so
    // duplicate positions in alpha_nz (cancel-then-refill churn) are inert.
    for (const int j : alpha_nz) {
      const double a = alpha[static_cast<std::size_t>(j)];
      alpha[static_cast<std::size_t>(j)] = 0.0;
      if (std::fabs(a) < 1e-11) continue;
      const lp::BasisStatus st = basis.status[static_cast<std::size_t>(j)];
      if (st == lp::BasisStatus::kBasic) {
        if (j != cand.column && std::fabs(a) > 1e-6) {
          reliable = false;  // tableau row should be e_j on other basics
          break;
        }
        continue;
      }
      const lp::Column& c = model.column(j);
      if (c.upper - c.lower <= 1e-12) continue;  // fixed: shifted var is 0
      if (st == lp::BasisStatus::kFree) {
        reliable = false;  // free nonbasic: no single-signed shift exists
        break;
      }
      const bool at_lower = st == lp::BasisStatus::kAtLower;
      if (at_lower && !std::isfinite(c.lower)) {
        reliable = false;
        break;
      }
      if (!at_lower && !std::isfinite(c.upper)) {
        reliable = false;
        break;
      }
      const double t = at_lower ? a : -a;
      const double g = gamma_of(t, c.type != lp::VarType::kContinuous);
      if (g == 0.0) continue;
      // s = x_j - l  (at lower)  or  s = u - x_j  (at upper).
      if (at_lower) {
        add_d(j, g);
        rhs += g * c.lower;
      } else {
        add_d(j, -g);
        rhs -= g * c.upper;
      }
    }
    if (!reliable) continue;

    // Slack nonbasics: alpha_slack_i = br_i; slack_i = rhs_i - a_i . x with
    // bounds [0, inf) (Le), (-inf, 0] (Ge) or fixed 0 (Eq).
    for (const int i : br.nz) {
      const double a = br.values[static_cast<std::size_t>(i)];
      if (std::fabs(a) < 1e-11) continue;
      const int var = n + i;
      const lp::BasisStatus st = basis.status[static_cast<std::size_t>(var)];
      if (st == lp::BasisStatus::kBasic) {
        if (basis.basic[static_cast<std::size_t>(cand.pos)] != var && std::fabs(a) > 1e-6) {
          // a basic slack with tableau residue: numerically suspect row
          reliable = false;
          break;
        }
        continue;
      }
      const lp::Row& row = model.row(i);
      if (row.type == lp::RowType::kEq) continue;  // slack fixed at 0
      const bool at_lower = row.type == lp::RowType::kLe;  // Le rests at 0=lower
      if (st == lp::BasisStatus::kFree || at_lower != (st == lp::BasisStatus::kAtLower)) {
        // A Le slack can only be nonbasic at its finite bound 0 (= lower);
        // a Ge slack at its upper 0. Anything else is inconsistent.
        reliable = false;
        break;
      }
      const double t = at_lower ? a : -a;
      const double g = gamma_of(t, false);
      if (g == 0.0) continue;
      // s = slack (Le, at lower 0): g * (rhs_i - a_i.x)
      // s = -slack (Ge, at upper 0): g * (a_i.x - rhs_i)
      const double sign = at_lower ? -1.0 : 1.0;
      for (const lp::RowEntry& e : row.entries) add_d(e.column, sign * g * e.coeff);
      rhs += at_lower ? -g * row.rhs : g * row.rhs;
    }
    if (!reliable) continue;

    // Assemble, clean tiny coefficients conservatively, and scale.
    Cut cut;
    cut.type = lp::RowType::kGe;
    cut.family = CutFamily::kGomory;
    double maxabs = 0.0;
    for (const int j : d_nz)
      maxabs = std::max(maxabs, std::fabs(d[static_cast<std::size_t>(j)]));
    if (maxabs < 1e-9 || maxabs > 1e9) continue;
    const double drop_below = std::max(1e-11, 1e-8 * maxabs);
    bool ok = true;
    double minabs = maxabs;
    for (const int j : d_nz) {
      // Consume-and-zero so duplicate positions in d_nz are inert.
      const double v = d[static_cast<std::size_t>(j)];
      d[static_cast<std::size_t>(j)] = 0.0;
      if (v == 0.0) continue;
      if (std::fabs(v) < drop_below) {
        // Dropping v * x_j from the >= left-hand side is safe after
        // relaxing the rhs by the term's maximum over the box.
        const lp::Column& c = model.column(j);
        if (!std::isfinite(c.lower) || !std::isfinite(c.upper)) {
          ok = false;
          break;
        }
        rhs -= std::max(v * c.lower, v * c.upper);
        continue;
      }
      minabs = std::min(minabs, std::fabs(v));
      cut.entries.push_back(lp::RowEntry{j, v});
    }
    if (!ok || cut.entries.empty() || maxabs / minabs > 1e7) continue;
    const double scale = 1.0 / maxabs;
    for (lp::RowEntry& e : cut.entries) e.coeff *= scale;
    cut.rhs = rhs * scale;
    double lhs = 0.0;
    for (const lp::RowEntry& e : cut.entries)
      lhs += e.coeff * x[static_cast<std::size_t>(e.column)];
    cut.violation = cut.rhs - lhs;
    if (cut.violation < min_violation) continue;
    finalize_entries(cut);
    cuts.push_back(std::move(cut));
  }
  std::sort(cuts.begin(), cuts.end(),
            [](const Cut& a, const Cut& b) { return a.violation > b.violation; });
  return cuts;
}

}  // namespace insched::mip
