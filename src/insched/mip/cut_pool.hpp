#pragma once

// Concurrent cut pool shared by the root separation loop and the in-tree
// separators. Workers offer globally valid cuts as they find them; the
// search owner periodically *selects* a batch to append to the base model
// (cut-and-branch restart). Selection is violation-driven with a parallelism
// filter, survivors age and fall off, and every decision is a deterministic
// function of pool contents (insertion order breaks ties), so deterministic
// wave mode stays bit-identical as long as cuts are offered in a
// deterministic order — which the sequential wave phase guarantees.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "insched/mip/cuts.hpp"
#include "insched/support/thread_annotations.hpp"

namespace insched::mip {

struct CutPoolCounters {
  long separated = 0;   ///< cuts offered via add()/add_all()
  long duplicates = 0;  ///< offers rejected as already seen (pooled or applied)
  long applied = 0;     ///< cuts handed out by select()
  long aged_out = 0;    ///< cuts dropped after going unselected too long
  long evicted = 0;     ///< cuts displaced by the capacity cap
};

class CutPool {
 public:
  /// `capacity` caps the pooled (unapplied) cuts; 0 = unbounded. At capacity
  /// an incoming fresh cut evicts the stalest pooled entry — highest age,
  /// oldest id on ties — so the pool degrades deterministically instead of
  /// growing without bound on cut-heavy models.
  explicit CutPool(int max_age = 4, int capacity = 0)
      : max_age_(max_age), capacity_(capacity) {}

  /// Offers one cut. Returns false when an identical cut (same type, rhs and
  /// entries up to 1e-9 rounding) was already offered — including cuts that
  /// were since selected and applied, so a model row is never duplicated
  /// across restarts. Thread-safe.
  bool add(Cut cut);
  /// Offers a batch; returns how many were fresh. Thread-safe.
  int add_all(std::vector<Cut> cuts);

  /// Picks up to `max_cuts` cuts whose violation at `x` (normalized by the
  /// entry 2-norm) exceeds `min_violation`, most violated first, skipping
  /// cuts whose cosine against an already selected one exceeds
  /// `max_parallel`. Selected cuts leave the pool (counted applied); the
  /// rest age by one round and are dropped past `max_age`. Thread-safe.
  [[nodiscard]] std::vector<Cut> select(const std::vector<double>& x, int max_cuts,
                                        double min_violation = 1e-5,
                                        double max_parallel = 0.98);

  /// Cuts currently pooled (not yet applied or aged out). Thread-safe.
  [[nodiscard]] int size() const;
  [[nodiscard]] CutPoolCounters counters() const;

 private:
  struct Entry {
    Cut cut;
    double norm = 1.0;  ///< 2-norm of the entry coefficients
    int age = 0;
    long id = 0;  ///< insertion order, deterministic tiebreak
  };

  mutable Mutex mu_;
  std::vector<Entry> entries_ INSCHED_GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> seen_ INSCHED_GUARDED_BY(mu_);
  CutPoolCounters counters_ INSCHED_GUARDED_BY(mu_);
  const int max_age_;
  const int capacity_;
  long next_id_ INSCHED_GUARDED_BY(mu_) = 0;
};

}  // namespace insched::mip
