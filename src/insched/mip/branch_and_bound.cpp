#include "insched/mip/branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <queue>

#include "insched/lp/presolve.hpp"
#include "insched/mip/cuts.hpp"
#include "insched/mip/heuristics.hpp"
#include "insched/support/assert.hpp"
#include "insched/support/log.hpp"

namespace insched::mip {

double MipResult::gap() const noexcept {
  if (!has_solution) return std::numeric_limits<double>::infinity();
  return std::fabs(best_bound - objective);
}

namespace {

using Clock = std::chrono::steady_clock;

struct Node {
  // Bound overrides relative to the base model, one pair per integer column
  // touched on the path from the root.
  std::vector<std::tuple<int, double, double>> bounds;
  double parent_bound = 0.0;  // LP bound inherited from the parent (internal minimize)
  int depth = 0;
  long id = 0;
};

struct NodeOrder {
  // Best-bound first; on ties prefer deeper nodes (cheap dive behaviour).
  bool operator()(const std::shared_ptr<Node>& a, const std::shared_ptr<Node>& b) const {
    if (a->parent_bound != b->parent_bound) return a->parent_bound > b->parent_bound;
    return a->depth < b->depth;
  }
};

class BranchAndBound {
 public:
  BranchAndBound(const lp::Model& model, const MipOptions& opt) : base_(model), opt_(opt) {
    maximize_ = model.sense() == lp::Sense::kMaximize;
  }

  MipResult run();

 private:
  // Internally everything is a minimization: `internal(v)` flips sign for max.
  [[nodiscard]] double internal(double v) const noexcept { return maximize_ ? -v : v; }

  void consider_incumbent(const std::vector<double>& x);
  [[nodiscard]] int pick_branch_var(const std::vector<double>& x) const;
  void record_pseudo_cost(int var, bool up, double degradation, double frac);
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  lp::Model base_;
  MipOptions opt_;
  bool maximize_ = false;

  bool have_incumbent_ = false;
  double incumbent_obj_ = 0.0;  // internal minimize convention
  std::vector<double> incumbent_;

  // Pseudo-cost statistics per column: average objective degradation per unit
  // of fractional distance, separately for up and down branches.
  std::vector<double> pc_up_sum_, pc_down_sum_;
  std::vector<long> pc_up_n_, pc_down_n_;

  MipResult result_;
  Clock::time_point start_;
};

void BranchAndBound::consider_incumbent(const std::vector<double>& x) {
  const double obj = internal(base_.objective_value(x));
  if (!have_incumbent_ || obj < incumbent_obj_ - 1e-12) {
    have_incumbent_ = true;
    incumbent_obj_ = obj;
    incumbent_ = x;
  }
}

int BranchAndBound::pick_branch_var(const std::vector<double>& x) const {
  int pick = -1;
  double best = -1.0;
  for (int j = 0; j < base_.num_columns(); ++j) {
    const lp::Column& c = base_.column(j);
    if (c.type == lp::VarType::kContinuous) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = std::fabs(v - std::round(v));
    if (frac <= opt_.int_tol) continue;
    double score = 0.0;
    if (opt_.branching == Branching::kPseudoCost &&
        pc_up_n_[static_cast<std::size_t>(j)] + pc_down_n_[static_cast<std::size_t>(j)] > 0) {
      const double up = pc_up_n_[static_cast<std::size_t>(j)] > 0
                            ? pc_up_sum_[static_cast<std::size_t>(j)] /
                                  static_cast<double>(pc_up_n_[static_cast<std::size_t>(j)])
                            : 1.0;
      const double down = pc_down_n_[static_cast<std::size_t>(j)] > 0
                              ? pc_down_sum_[static_cast<std::size_t>(j)] /
                                    static_cast<double>(pc_down_n_[static_cast<std::size_t>(j)])
                              : 1.0;
      const double f = v - std::floor(v);
      // Product rule: balanced degradation on both children scores high.
      score = std::max(up * (1.0 - f), 1e-6) * std::max(down * f, 1e-6);
    } else {
      // Most-fractional: distance from the nearest integer.
      score = std::min(v - std::floor(v), std::ceil(v) - v);
    }
    if (score > best) {
      best = score;
      pick = j;
    }
  }
  return pick;
}

void BranchAndBound::record_pseudo_cost(int var, bool up, double degradation, double frac) {
  if (frac <= 1e-12) return;
  const double per_unit = degradation / frac;
  if (up) {
    pc_up_sum_[static_cast<std::size_t>(var)] += per_unit;
    ++pc_up_n_[static_cast<std::size_t>(var)];
  } else {
    pc_down_sum_[static_cast<std::size_t>(var)] += per_unit;
    ++pc_down_n_[static_cast<std::size_t>(var)];
  }
}

MipResult BranchAndBound::run() {
  start_ = Clock::now();
  const int n = base_.num_columns();
  pc_up_sum_.assign(static_cast<std::size_t>(n), 0.0);
  pc_down_sum_.assign(static_cast<std::size_t>(n), 0.0);
  pc_up_n_.assign(static_cast<std::size_t>(n), 0);
  pc_down_n_.assign(static_cast<std::size_t>(n), 0);

  // --- Root LP with optional cut rounds ---------------------------------
  lp::SimplexResult root = lp::solve_lp(base_, opt_.lp);
  result_.lp_iterations += root.iterations;
  if (root.status == lp::SolveStatus::kInfeasible) {
    result_.status = lp::SolveStatus::kInfeasible;
    result_.solve_seconds = elapsed_s();
    return result_;
  }
  if (root.status == lp::SolveStatus::kUnbounded) {
    // The relaxation is unbounded; for the models this library builds that
    // means the MIP itself is unbounded or mis-built. Report as-is.
    result_.status = lp::SolveStatus::kUnbounded;
    result_.solve_seconds = elapsed_s();
    return result_;
  }
  if (!root.optimal()) {
    result_.status = root.status;
    result_.solve_seconds = elapsed_s();
    return result_;
  }

  if (opt_.use_cover_cuts) {
    for (int round = 0; round < opt_.max_cut_rounds; ++round) {
      const std::vector<Cut> cuts = generate_cover_cuts(base_, root.x);
      if (cuts.empty()) break;
      for (const Cut& cut : cuts) {
        base_.add_row("cover_cut", cut.type, cut.rhs, cut.entries);
        ++result_.cuts_added;
      }
      root = lp::solve_lp(base_, opt_.lp);
      result_.lp_iterations += root.iterations;
      if (!root.optimal()) break;
    }
    if (!root.optimal()) {
      // Cuts are valid inequalities; a failure here is numerical. Rebuild
      // without trusting the cut LP and continue from the plain root.
      root = lp::solve_lp(base_, opt_.lp);
      result_.lp_iterations += root.iterations;
      if (!root.optimal()) {
        result_.status = root.status;
        result_.solve_seconds = elapsed_s();
        return result_;
      }
    }
  }

  // Root heuristic: an early incumbent makes pruning effective immediately.
  if (opt_.use_rounding_heuristic) {
    if (auto x = round_and_fix(base_, root.x, opt_.lp, opt_.int_tol)) consider_incumbent(*x);
    else if (auto xd = dive(base_, root.x, opt_.lp, opt_.int_tol)) consider_incumbent(*xd);
  }

  // --- Branch and bound ---------------------------------------------------
  std::priority_queue<std::shared_ptr<Node>, std::vector<std::shared_ptr<Node>>, NodeOrder>
      open;
  auto root_node = std::make_shared<Node>();
  root_node->parent_bound = internal(root.objective);
  open.push(root_node);
  long next_id = 1;
  double best_open_bound = root_node->parent_bound;

  while (!open.empty()) {
    if (result_.nodes >= opt_.max_nodes || elapsed_s() > opt_.time_limit_s) {
      result_.status = lp::SolveStatus::kIterationLimit;
      break;
    }
    const std::shared_ptr<Node> node = open.top();
    open.pop();
    best_open_bound = node->parent_bound;

    // Bound pruning against the incumbent.
    if (have_incumbent_ && node->parent_bound >= incumbent_obj_ - opt_.gap_abs) continue;

    ++result_.nodes;

    // Materialize the node model.
    lp::Model local = base_;
    for (const auto& [col, lo, hi] : node->bounds) local.set_bounds(col, lo, hi);

    const lp::SimplexResult rel = lp::solve_lp(local, opt_.lp);
    result_.lp_iterations += rel.iterations;
    if (rel.status == lp::SolveStatus::kInfeasible) continue;
    if (!rel.optimal()) continue;  // numerical trouble: drop the node (bound stays valid via siblings)

    const double bound = internal(rel.objective);
    if (have_incumbent_ && bound >= incumbent_obj_ - opt_.gap_abs) continue;

    const int branch_var = pick_branch_var(rel.x);
    if (branch_var < 0) {
      // Integer feasible.
      std::vector<double> x = rel.x;
      for (int j = 0; j < n; ++j) {
        if (base_.column(j).type != lp::VarType::kContinuous)
          x[static_cast<std::size_t>(j)] = std::round(x[static_cast<std::size_t>(j)]);
      }
      if (base_.is_feasible(x, 1e-5)) consider_incumbent(x);
      continue;
    }

    // Occasional node heuristic on shallow nodes.
    if (opt_.use_rounding_heuristic && node->depth <= 2) {
      if (auto x = round_and_fix(local, rel.x, opt_.lp, opt_.int_tol)) consider_incumbent(*x);
    }

    const double v = rel.x[static_cast<std::size_t>(branch_var)];
    const double floor_v = std::floor(v);
    const double frac = v - floor_v;

    // Down child: x <= floor(v).
    {
      auto child = std::make_shared<Node>();
      child->bounds = node->bounds;
      const lp::Column& c = local.column(branch_var);
      child->bounds.emplace_back(branch_var, c.lower, floor_v);
      child->parent_bound = bound;
      child->depth = node->depth + 1;
      child->id = next_id++;
      if (floor_v >= c.lower - 1e-9) open.push(std::move(child));
    }
    // Up child: x >= ceil(v).
    {
      auto child = std::make_shared<Node>();
      child->bounds = node->bounds;
      const lp::Column& c = local.column(branch_var);
      child->bounds.emplace_back(branch_var, floor_v + 1.0, c.upper);
      child->parent_bound = bound;
      child->depth = node->depth + 1;
      child->id = next_id++;
      if (floor_v + 1.0 <= c.upper + 1e-9) open.push(std::move(child));
    }

    // Update pseudo-costs lazily: charge the LP bound movement of this node
    // relative to its parent to the variable branched at the parent. (A
    // simple, standard approximation sufficient for our instance sizes.)
    if (!node->bounds.empty()) {
      const auto& [col, lo, hi] = node->bounds.back();
      (void)lo;
      const bool was_up = hi >= base_.column(col).upper - 1e-9;
      record_pseudo_cost(col, was_up, std::max(0.0, bound - node->parent_bound),
                         std::max(frac, 1e-3));
    }
  }

  if (result_.status != lp::SolveStatus::kIterationLimit) {
    result_.status = have_incumbent_ ? lp::SolveStatus::kOptimal : lp::SolveStatus::kInfeasible;
  }

  result_.has_solution = have_incumbent_;
  if (have_incumbent_) {
    result_.x = incumbent_;
    result_.objective = maximize_ ? -incumbent_obj_ : incumbent_obj_;
  }
  const double open_bound = open.empty() ? (have_incumbent_ ? incumbent_obj_ : 0.0)
                                         : std::min(best_open_bound, open.top()->parent_bound);
  result_.best_bound = maximize_ ? -open_bound : open_bound;
  result_.solve_seconds = elapsed_s();
  return result_;
}

}  // namespace

MipResult solve_mip(const lp::Model& model, const MipOptions& options) {
  if (!model.has_integers()) {
    // Pure LP: answer directly.
    const lp::SimplexResult res = lp::solve_lp(model, options.lp);
    MipResult out;
    out.status = res.status;
    out.has_solution = res.optimal();
    out.objective = res.objective;
    out.best_bound = res.objective;
    out.x = res.x;
    out.lp_iterations = res.iterations;
    return out;
  }

  if (options.use_presolve) {
    const lp::PresolveResult pre = lp::presolve(model);
    if (pre.infeasible) {
      MipResult out;
      out.status = lp::SolveStatus::kInfeasible;
      return out;
    }
    if (pre.removed_columns > 0 || pre.removed_rows > 0) {
      MipOptions inner = options;
      inner.use_presolve = false;  // already applied
      BranchAndBound solver(pre.reduced, inner);
      MipResult out = solver.run();
      if (out.has_solution) out.x = pre.restore(out.x);
      return out;
    }
  }

  BranchAndBound solver(model, options);
  return solver.run();
}

}  // namespace insched::mip
