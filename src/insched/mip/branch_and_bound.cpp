#include "insched/mip/branch_and_bound.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "insched/lp/presolve.hpp"
#include "insched/mip/cut_pool.hpp"
#include "insched/mip/cuts.hpp"
#include "insched/mip/heuristics.hpp"
#include "insched/mip/node_pool.hpp"
#include "insched/mip/probing.hpp"
#include "insched/support/assert.hpp"
#include "insched/support/fault_inject.hpp"
#include "insched/support/log.hpp"
#include "insched/support/parallel.hpp"

namespace insched::mip {

const char* to_string(MipTermination termination) noexcept {
  switch (termination) {
    case MipTermination::kProvedOptimal: return "proved_optimal";
    case MipTermination::kProvedInfeasible: return "proved_infeasible";
    case MipTermination::kNodeLimit: return "node_limit";
    case MipTermination::kTimeLimit: return "time_limit";
    case MipTermination::kWorkLimit: return "work_limit";
    case MipTermination::kUnbounded: return "unbounded";
    case MipTermination::kNumericalFailure: return "numerical_failure";
  }
  return "unknown";
}

double MipResult::gap() const noexcept {
  if (!has_solution) return std::numeric_limits<double>::infinity();
  if (termination == MipTermination::kProvedOptimal) return 0.0;
  return std::fabs(best_bound - objective);
}

double MipResult::gap_rel() const noexcept {
  const double g = gap();
  if (!std::isfinite(g)) return g;
  return g / std::max(1.0, std::fabs(objective));
}

namespace {

using Clock = std::chrono::steady_clock;

enum class Cause : int { kNone = 0, kNodeLimit = 1, kTimeLimit = 2, kWorkLimit = 3 };

class Search {
 public:
  Search(const lp::Model& model, const MipOptions& opt,
         std::vector<Implication> implications = {})
      : base_(model), opt_(opt), implications_(std::move(implications)) {
    maximize_ = model.sense() == lp::Sense::kMaximize;
    // Objective-integrality detection: when every integer column has an
    // integral objective coefficient and every continuous column has none,
    // all attainable objective values live on the lattice constant + Z, so
    // node bounds can be rounded to the next lattice point before pruning.
    obj_integral_ = true;
    for (int j = 0; j < model.num_columns() && obj_integral_; ++j) {
      const lp::Column& c = model.column(j);
      if (c.type == lp::VarType::kContinuous) {
        obj_integral_ = c.objective == 0.0;
      } else {
        obj_integral_ = std::fabs(c.objective - std::round(c.objective)) <= 1e-9;
      }
    }
    const double ic = internal(model.objective_constant());
    obj_lattice_offset_ = ic - std::floor(ic);
  }

  MipResult run();

 private:
  // Internally everything is a minimization: `internal(v)` flips sign for max.
  [[nodiscard]] double internal(double v) const noexcept { return maximize_ ? -v : v; }
  /// Rounds an internal (minimization) lower bound up to the next attainable
  /// objective lattice point when the objective is integral. Closes the
  /// fractional plateau left by near-equal analysis costs: a node with bound
  /// incumbent + 0.3 can never improve on the incumbent.
  [[nodiscard]] double tighten(double bound) const noexcept {
    if (!obj_integral_ || !std::isfinite(bound)) return bound;
    return obj_lattice_offset_ + std::ceil(bound - obj_lattice_offset_ - 1e-6);
  }
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void set_cause(Cause c) {
    int expected = 0;
    cause_.compare_exchange_strong(expected, static_cast<int>(c), std::memory_order_relaxed);
  }

  [[nodiscard]] bool cuts_enabled() const {
    return opt_.use_cover_cuts || opt_.use_clique_cuts || opt_.use_gomory_cuts ||
           opt_.use_mir_cuts;
  }
  bool apply_cuts(const std::vector<Cut>& cuts, lp::SimplexResult* root);
  bool separate_root(lp::SimplexResult* root);
  void separate_in_tree(const SearchNode& node, const std::vector<double>& x);
  [[nodiscard]] NodePtr try_restart();
  void rebind_workspaces();

  [[nodiscard]] int pick_branch_var(const SearchNode& node, const std::vector<double>& x,
                                    double node_bound, const PseudoCostTable& pc_read,
                                    PseudoCostTable& pc_write, const lp::Basis* basis,
                                    const lp::Factorization* hint, lp::WarmSimplex* sb_ws);
  void offer_point(const std::vector<double>& x, long node_id);
  void try_integral_incumbent(const std::vector<double>& xrel, long node_id);
  [[nodiscard]] std::optional<std::vector<double>> warm_round_and_fix(
      lp::WarmSimplex& ws, const SearchNode& node, const std::vector<double>& xrel,
      const lp::Basis& basis, const lp::Factorization* hint);
  [[nodiscard]] std::optional<std::vector<double>> warm_dive(
      lp::WarmSimplex& ws, const SearchNode& node, const std::vector<double>& xrel,
      const lp::Basis& basis, const lp::Factorization* hint, int max_depth);
  void node_heuristic(lp::WarmSimplex* heur_ws, const SearchNode& node,
                      const std::vector<double>& xrel,
                      const std::shared_ptr<const lp::Basis>& basis,
                      const lp::Factorization* hint, long node_id);
  lp::SimplexResult solve_node(lp::WarmSimplex& ws, const SearchNode& node,
                               const lp::Factorization* hint);
  void process_solved(const NodePtr& node, lp::SimplexResult&& rel,
                      const PseudoCostTable& pc_read, PseudoCostTable& pc_write,
                      const std::function<long()>& alloc_id,
                      const std::function<void(NodePtr)>& push, lp::WarmSimplex* heur_ws,
                      lp::WarmSimplex* sb_ws);

  void run_async(int threads, NodePtr root_node);
  void async_worker(int tid);
  void run_deterministic(int threads, NodePtr root_node);
  void finalize(bool proved);

  lp::Model base_;
  MipOptions opt_;
  bool maximize_ = false;
  bool obj_integral_ = false;
  double obj_lattice_offset_ = 0.0;
  int n_ = 0;
  Clock::time_point start_;

  // Root relaxation solved once up front; the root node consumes it instead
  // of re-solving.
  lp::SimplexResult root_result_;
  bool root_pending_ = false;

  Incumbent incumbent_;
  std::unique_ptr<lp::WarmSimplex> heur_ws_;      // root + deterministic heuristics
  std::unique_ptr<lp::WarmSimplex> sb_ws_;        // deterministic strong branching
  std::unique_ptr<NodePool> pool_;                // async mode only
  std::unique_ptr<FactorCache> cache_;            // async mode only
  std::unique_ptr<SharedPseudoCosts> shared_pc_;  // async mode only

  // Cutting-plane engine: concurrent pool fed by the root rounds and the
  // in-tree separators, conflict graph for the clique cuts, last root point
  // for restart-time selection. `restarts_done_` only changes between tree
  // runs (single-threaded), so a plain int is race-free.
  std::unique_ptr<CutPool> cut_pool_;
  ConflictGraph conflicts_;
  std::vector<Implication> implications_;
  std::vector<double> root_x_;
  std::atomic<bool> restart_requested_{false};
  int restarts_done_ = 0;

  std::atomic<long> nodes_{0};
  std::atomic<long> lp_iterations_{0};
  std::atomic<long> next_id_{1};
  std::atomic<int> cause_{static_cast<int>(Cause::kNone)};
  std::atomic<long> warm_solves_{0}, cold_solves_{0}, warm_failures_{0};
  std::atomic<long> factor_hits_{0}, factor_misses_{0};
  std::atomic<long> heur_warm_{0}, heur_warm_failed_{0};
  std::atomic<long> steals_{0};
  std::atomic<long> sb_lps_{0};
  // FTRAN/BTRAN/eta observability summed over every LP solve in the search.
  std::atomic<long> lp_ftran_{0}, lp_btran_{0}, lp_refactor_{0}, lp_eta_{0};
  std::atomic<long> lp_rhs_nnz_{0}, lp_rhs_dim_{0};
  // Recovery-ladder counters summed over the same solves, plus tree retries.
  std::atomic<long> rec_refactor_{0}, rec_repair_{0}, rec_perturb_{0};
  std::atomic<long> rec_residual_{0}, rec_resolve_{0};
  std::atomic<long> node_retries_{0}, root_retries_{0};

  void add_factor_stats(const lp::FactorStats& fs) {
    lp_ftran_.fetch_add(fs.ftran_calls, std::memory_order_relaxed);
    lp_btran_.fetch_add(fs.btran_calls, std::memory_order_relaxed);
    lp_refactor_.fetch_add(fs.refactorizations, std::memory_order_relaxed);
    lp_eta_.fetch_add(fs.eta_pivots, std::memory_order_relaxed);
    lp_rhs_nnz_.fetch_add(fs.rhs_nonzeros, std::memory_order_relaxed);
    lp_rhs_dim_.fetch_add(fs.rhs_dimension, std::memory_order_relaxed);
  }

  /// Accumulates everything observable from one LP solve: factorization
  /// stats plus any recovery-ladder rungs the engine had to take.
  void add_lp_stats(const lp::SimplexResult& res) {
    add_factor_stats(res.factor_stats);
    const lp::RecoveryStats& rc = res.recovery;
    if (rc.total() == 0) return;
    rec_refactor_.fetch_add(rc.refactor_tightened, std::memory_order_relaxed);
    rec_repair_.fetch_add(rc.singular_repairs, std::memory_order_relaxed);
    rec_perturb_.fetch_add(rc.perturbations, std::memory_order_relaxed);
    rec_residual_.fetch_add(rc.residual_failures, std::memory_order_relaxed);
    rec_resolve_.fetch_add(rc.resolves, std::memory_order_relaxed);
  }

  [[nodiscard]] bool work_limit_hit() const noexcept {
    return opt_.max_lp_iterations > 0 &&
           lp_iterations_.load(std::memory_order_relaxed) >= opt_.max_lp_iterations;
  }

  bool pin_factors_ = false;
  double trunc_open_bound_ = std::numeric_limits<double>::infinity();

  MipResult result_;
};

int Search::pick_branch_var(const SearchNode& node, const std::vector<double>& x,
                            double node_bound, const PseudoCostTable& pc_read,
                            PseudoCostTable& pc_write, const lp::Basis* basis,
                            const lp::Factorization* hint, lp::WarmSimplex* sb_ws) {
  struct Cand {
    int j;
    double v;
    double score;
  };
  const bool pc_scores = opt_.branching != Branching::kMostFractional;
  std::vector<Cand> cands;
  for (int j = 0; j < n_; ++j) {
    const lp::Column& c = base_.column(j);
    if (c.type == lp::VarType::kContinuous) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double dist = std::fabs(v - std::round(v));
    if (dist <= opt_.int_tol) continue;
    double score;
    const auto js = static_cast<std::size_t>(j);
    if (pc_scores && pc_read.up_n[js] + pc_read.down_n[js] > 0) {
      const double up = pc_read.up_n[js] > 0
                            ? pc_read.up_sum[js] / static_cast<double>(pc_read.up_n[js])
                            : 1.0;
      const double down = pc_read.down_n[js] > 0
                              ? pc_read.down_sum[js] / static_cast<double>(pc_read.down_n[js])
                              : 1.0;
      const double f = v - std::floor(v);
      // Product rule: balanced degradation on both children scores high.
      score = std::max(up * (1.0 - f), 1e-6) * std::max(down * f, 1e-6);
    } else {
      // Most-fractional: distance from the nearest integer.
      score = dist;
    }
    cands.push_back(Cand{j, v, score});
  }
  if (cands.empty()) return -1;

  // Reliability branching: while a candidate's pseudo-cost rests on fewer
  // than `reliability` observations per side, replace its estimated score by
  // two bounded strong-branching dual probes from this node's own optimal
  // basis. Optimal probes feed the pseudo-cost table, so probing pays for
  // itself and dies out as the table matures.
  if (opt_.branching == Branching::kReliability && sb_ws && basis && !basis->empty() &&
      node.depth <= opt_.strong_branch_depth && opt_.strong_branch_candidates > 0) {
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      return a.score != b.score ? a.score > b.score : a.j < b.j;
    });
    // In deterministic mode both tables are the same object; adding the
    // write-side counts again would double-count observations.
    const bool same_table = &pc_read == &pc_write;
    const long need = std::max(1, opt_.reliability);
    int probed = 0;
    for (Cand& c : cands) {
      if (probed >= opt_.strong_branch_candidates) break;
      const auto js = static_cast<std::size_t>(c.j);
      long up_n = pc_read.up_n[js];
      long down_n = pc_read.down_n[js];
      if (!same_table) {
        up_n += pc_write.up_n[js];
        down_n += pc_write.down_n[js];
      }
      if (std::min(up_n, down_n) >= need) continue;
      ++probed;

      // Effective bounds of c.j at this node (later overrides win).
      double lo = base_.column(c.j).lower;
      double hi = base_.column(c.j).upper;
      for (const lp::BoundOverride& o : node.bounds) {
        if (o.column == c.j) {
          lo = o.lower;
          hi = o.upper;
        }
      }
      const double floor_v = std::floor(c.v);
      const double f = c.v - floor_v;
      const double up_avg =
          pc_read.up_n[js] > 0 ? pc_read.up_sum[js] / static_cast<double>(pc_read.up_n[js])
                               : 1.0;
      const double down_avg = pc_read.down_n[js] > 0
                                  ? pc_read.down_sum[js] /
                                        static_cast<double>(pc_read.down_n[js])
                                  : 1.0;
      // A child proven infeasible closes a whole side — score it as a very
      // large degradation without polluting the pseudo-cost averages.
      const double cutoff = std::max(1.0, std::fabs(node_bound)) * 1e3;
      const auto probe = [&](double clo, double chi, bool up_dir, double dist,
                             double estimate) -> double {
        std::vector<lp::BoundOverride> ov = node.bounds;
        ov.push_back({c.j, clo, chi});
        sb_lps_.fetch_add(1, std::memory_order_relaxed);
        const lp::SimplexResult res = sb_ws->solve_dual(ov, *basis, hint);
        add_lp_stats(res);
        lp_iterations_.fetch_add(res.iterations, std::memory_order_relaxed);
        if (res.status == lp::SolveStatus::kOptimal) {
          const double deg = std::max(0.0, internal(res.objective) - node_bound);
          pc_write.record(c.j, up_dir, deg, std::max(dist, 1e-3));
          return deg;
        }
        if (res.status == lp::SolveStatus::kInfeasible) return cutoff;
        // Iteration limit or numerical trouble: no objective to trust, keep
        // the pseudo-cost estimate and leave the table untouched.
        return estimate;
      };
      const double down_deg = floor_v >= lo - 1e-9
                                  ? probe(lo, floor_v, /*up_dir=*/false, f, down_avg * f)
                                  : cutoff;
      const double up_deg = floor_v + 1.0 <= hi + 1e-9
                                ? probe(floor_v + 1.0, hi, /*up_dir=*/true, 1.0 - f,
                                        up_avg * (1.0 - f))
                                : cutoff;
      c.score = std::max(up_deg, 1e-6) * std::max(down_deg, 1e-6);
    }
  }

  int pick = -1;
  double best = -1.0;
  for (const Cand& c : cands) {
    if (c.score > best) {
      best = c.score;
      pick = c.j;
    }
  }
  return pick;
}

void Search::offer_point(const std::vector<double>& x, long node_id) {
  // Polish before offering: dives routinely strand one affordable binary at 0
  // behind an already-rounded window, leaving the incumbent exactly one unit
  // below the optimum — on near-symmetric budget plateaus that gap is never
  // closed by branching. The greedy fill flips such binaries back on with
  // pure row-activity arithmetic, and its result dominates `x` whenever it
  // flips anything, so only the better of the two points is offered.
  std::vector<double> polished = x;
  if (greedy_fill(base_, &polished) > 0 && base_.is_feasible(polished, 1e-6)) {
    incumbent_.offer(internal(base_.objective_value(polished)), polished, node_id);
    return;
  }
  incumbent_.offer(internal(base_.objective_value(x)), x, node_id);
}

void Search::try_integral_incumbent(const std::vector<double>& xrel, long node_id) {
  std::vector<double> x = xrel;
  for (int j = 0; j < n_; ++j) {
    if (base_.column(j).type != lp::VarType::kContinuous)
      x[static_cast<std::size_t>(j)] = std::round(x[static_cast<std::size_t>(j)]);
  }
  if (base_.is_feasible(x, 1e-5)) offer_point(x, node_id);
}

// Fix-and-solve rounding heuristic on the warm workspace: fixing every
// integer column to its rounded value is a pure bound change, so the node's
// optimal basis re-solves in a handful of dual pivots instead of copying the
// model and running a cold two-phase primal. A failed heuristic is harmless,
// so infeasible/unstable outcomes just return nullopt.
std::optional<std::vector<double>> Search::warm_round_and_fix(
    lp::WarmSimplex& ws, const SearchNode& node, const std::vector<double>& xrel,
    const lp::Basis& basis, const lp::Factorization* hint) {
  std::vector<lp::BoundOverride> overrides = node.bounds;
  bool any_integer = false;
  for (int j = 0; j < n_; ++j) {
    const lp::Column& c = base_.column(j);
    if (c.type == lp::VarType::kContinuous) continue;
    any_integer = true;
    // Effective bounds of j at this node (later overrides win).
    double lo = c.lower, hi = c.upper;
    for (const lp::BoundOverride& o : node.bounds) {
      if (o.column == j) {
        lo = o.lower;
        hi = o.upper;
      }
    }
    double r = std::round(xrel[static_cast<std::size_t>(j)]);
    r = std::max(r, std::ceil(lo - 1e-9));
    r = std::min(r, std::floor(hi + 1e-9));
    if (r < lo - 1e-9 || r > hi + 1e-9) return std::nullopt;
    overrides.push_back({j, r, r});
  }
  if (!any_integer) return xrel;

  heur_warm_.fetch_add(1, std::memory_order_relaxed);
  const lp::SimplexResult res = ws.solve_dual(overrides, basis, hint);
  add_lp_stats(res);
  if (!res.optimal()) {
    heur_warm_failed_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::vector<double> x = res.x;
  // Snap the integers exactly to avoid tolerance drift downstream.
  for (int j = 0; j < n_; ++j) {
    if (base_.column(j).type != lp::VarType::kContinuous)
      x[static_cast<std::size_t>(j)] = std::round(x[static_cast<std::size_t>(j)]);
  }
  if (!base_.is_feasible(x, std::max(opt_.int_tol, 1e-6))) return std::nullopt;
  return x;
}

// Warm iterative diving: repeatedly fix the least-fractional unfixed integer
// variable to its nearest in-bounds integer and dual-re-solve, chaining each
// step from the previous step's exported basis and factorization — every
// re-solve is a one-bound perturbation, so a dive that cost max_depth cold
// two-phase solves now costs a few dual pivots per step. Mirrors
// heuristics.cpp dive(); like all heuristics, failure is harmless.
std::optional<std::vector<double>> Search::warm_dive(lp::WarmSimplex& ws,
                                                     const SearchNode& node,
                                                     const std::vector<double>& xrel,
                                                     const lp::Basis& basis,
                                                     const lp::Factorization* hint,
                                                     int max_depth) {
  // Effective bounds at this node.
  std::vector<double> lo(static_cast<std::size_t>(n_)), hi(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    lo[static_cast<std::size_t>(j)] = base_.column(j).lower;
    hi[static_cast<std::size_t>(j)] = base_.column(j).upper;
  }
  for (const lp::BoundOverride& o : node.bounds) {
    lo[static_cast<std::size_t>(o.column)] = o.lower;
    hi[static_cast<std::size_t>(o.column)] = o.upper;
  }

  std::vector<lp::BoundOverride> overrides = node.bounds;
  std::vector<double> current = xrel;
  lp::Basis cur_basis = basis;
  std::shared_ptr<const lp::Factorization> cur_factor;  // keeps the hint alive
  const lp::Factorization* cur_hint = hint;
  std::vector<bool> fixed(static_cast<std::size_t>(n_), false);

  for (int depth = 0; depth < max_depth; ++depth) {
    // Pick the least-fractional unfixed integer variable.
    int pick = -1;
    double best_dist = 0.5 + 1e-9;
    for (int j = 0; j < n_; ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (base_.column(j).type == lp::VarType::kContinuous) continue;
      if (fixed[js] || lo[js] == hi[js]) continue;
      const double v = current[js];
      const double dist = std::fabs(v - std::round(v));
      if (dist <= opt_.int_tol) continue;
      if (dist < best_dist) {
        best_dist = dist;
        pick = j;
      }
    }
    if (pick < 0) {
      // All integral: finish with a fix-and-solve from the dive's basis
      // (also fixes near-integral drift and re-checks feasibility).
      SearchNode dived;
      dived.bounds = std::move(overrides);
      return warm_round_and_fix(ws, dived, current, cur_basis, cur_hint);
    }
    const auto ps = static_cast<std::size_t>(pick);
    const double v = current[ps];
    double nearest = std::round(v);
    nearest = std::max(nearest, std::ceil(lo[ps] - 1e-9));
    nearest = std::min(nearest, std::floor(hi[ps] + 1e-9));
    // Nearest first; if that direction is LP-infeasible, try the other side.
    const double other = nearest >= v
                             ? std::max(nearest - 1.0, std::ceil(lo[ps] - 1e-9))
                             : std::min(nearest + 1.0, std::floor(hi[ps] + 1e-9));
    overrides.push_back({pick, nearest, nearest});
    lp::SimplexResult res = ws.solve_dual(overrides, cur_basis, cur_hint);
    add_lp_stats(res);
    if (!res.optimal() && other != nearest) {
      overrides.back() = {pick, other, other};
      res = ws.solve_dual(overrides, cur_basis, cur_hint);
      add_lp_stats(res);
    }
    if (!res.optimal()) return std::nullopt;
    fixed[ps] = true;
    current = std::move(res.x);
    if (!res.basis.empty()) {
      cur_basis = std::move(res.basis);
      cur_factor = res.factor;  // matches cur_basis by construction
      cur_hint = cur_factor.get();
    }
  }
  return std::nullopt;
}

void Search::node_heuristic(lp::WarmSimplex* heur_ws, const SearchNode& node,
                            const std::vector<double>& xrel,
                            const std::shared_ptr<const lp::Basis>& basis,
                            const lp::Factorization* hint, long node_id) {
  if (heur_ws && basis && !basis->empty()) {
    if (auto x = warm_round_and_fix(*heur_ws, node, xrel, *basis, hint))
      offer_point(*x, node_id);
    return;
  }
  // No usable basis: fall back to the model-copying cold path.
  lp::Model local = base_;
  for (const lp::BoundOverride& o : node.bounds) local.set_bounds(o.column, o.lower, o.upper);
  if (auto x = round_and_fix(local, xrel, opt_.lp, opt_.int_tol)) offer_point(*x, node_id);
}

lp::SimplexResult Search::solve_node(lp::WarmSimplex& ws, const SearchNode& node,
                                     const lp::Factorization* hint) {
  if (opt_.warm_start && node.warm_basis && !node.warm_basis->empty()) {
    if (hint) factor_hits_.fetch_add(1, std::memory_order_relaxed);
    else factor_misses_.fetch_add(1, std::memory_order_relaxed);
    lp::SimplexResult res = ws.solve_dual(node.bounds, *node.warm_basis, hint);
    add_lp_stats(res);
    // Optimal outcomes are residual-checked and infeasibility proofs are
    // self-validating inside the dual loop (br * B = e_r plus the
    // sub-tolerance-column slack bound), so both can be trusted even when
    // the product-form hint has drifted. Anything else falls back cold.
    if (res.status == lp::SolveStatus::kOptimal ||
        res.status == lp::SolveStatus::kInfeasible) {
      warm_solves_.fetch_add(1, std::memory_order_relaxed);
      return res;
    }
    warm_failures_.fetch_add(1, std::memory_order_relaxed);
  }
  cold_solves_.fetch_add(1, std::memory_order_relaxed);
  lp::SimplexResult cold = ws.solve_cold(node.bounds);
  add_lp_stats(cold);
  if (cold.status != lp::SolveStatus::kNumericalFailure || !opt_.lp.enable_recovery)
    return cold;

  // Last tree-level rung: even the cold primal failed numerically, which on
  // these models means the shared workspace state (eta drift, pricing
  // weights) is suspect rather than the subproblem itself. Re-solve once
  // from scratch on a throwaway workspace with conservative settings — full
  // Dantzig pricing, frequent refactorization — before dropping the node
  // (dropping an unsolved node silently weakens the optimality proof).
  node_retries_.fetch_add(1, std::memory_order_relaxed);
  lp::SimplexOptions careful = opt_.lp;
  careful.collect_basis = true;
  careful.want_duals = false;
  careful.price_block_size = 0;
  careful.refactor_interval = 32;
  lp::WarmSimplex fresh(base_, careful);
  lp::SimplexResult retry = fresh.solve_cold(node.bounds);
  add_lp_stats(retry);
  return retry;
}

// In-tree separation: shallow non-root nodes run the bound-independent
// separators (covers and cliques come from rows + global bounds, so cuts
// found anywhere in the tree are valid everywhere; GMI stays root-only) into
// the shared pool. Once enough fresh cuts accumulate early in the search, a
// cut-and-branch restart is requested: node workspaces are bound to a fixed
// row set, so restarting the tree on the extended model is the only way
// these cuts can reach the node LPs.
void Search::separate_in_tree(const SearchNode& node, const std::vector<double>& x) {
  if (!opt_.in_tree_cuts || !cut_pool_) return;
  if (!(opt_.use_cover_cuts || opt_.use_clique_cuts || opt_.use_mir_cuts)) return;
  if (node.depth == 0 || node.depth > opt_.cut_node_depth) return;
  if (restarts_done_ >= opt_.max_tree_restarts) return;
  if (nodes_.load(std::memory_order_relaxed) > opt_.restart_node_budget) return;
  // Injected separator failure: cuts are optional, so the round just yields
  // nothing — the search must still prove the optimum from branching alone.
  if (fault::enabled() && fault::should_fail(fault::Hook::kCutSeparation)) return;
  int fresh = 0;
  if (opt_.use_cover_cuts)
    fresh += cut_pool_->add_all(
        generate_cover_cuts(base_, x, opt_.cut_min_violation, opt_.lift_cover_cuts));
  if (opt_.use_clique_cuts)
    fresh += cut_pool_->add_all(
        generate_clique_cuts(base_, x, conflicts_, opt_.cut_min_violation));
  if (opt_.use_mir_cuts)
    fresh += cut_pool_->add_all(generate_mir_cuts(base_, x, opt_.cut_min_violation));
  if (fresh > 0 && cut_pool_->size() >= opt_.min_restart_cuts &&
      !restart_requested_.load(std::memory_order_relaxed)) {
    restart_requested_.store(true, std::memory_order_relaxed);
    if (pool_) pool_->stop();  // async: drain the workers; run_async restarts
  }
}

void Search::process_solved(const NodePtr& node, lp::SimplexResult&& rel,
                            const PseudoCostTable& pc_read, PseudoCostTable& pc_write,
                            const std::function<long()>& alloc_id,
                            const std::function<void(NodePtr)>& push,
                            lp::WarmSimplex* heur_ws, lp::WarmSimplex* sb_ws) {
  if (!rel.optimal()) return;  // infeasible or numerical trouble: drop the node
  const double bound = internal(rel.objective);

  // Charge the LP bound movement of this node relative to its parent to the
  // variable branched at the parent, scaled by its fractionality there.
  if (!node->bounds.empty()) {
    const lp::BoundOverride& o = node->bounds.back();
    const bool was_up = o.upper >= base_.column(o.column).upper - 1e-9;
    pc_write.record(o.column, was_up, std::max(0.0, bound - node->parent_bound),
                    std::max(node->branch_frac, 1e-3));
  }

  if (incumbent_.has() && tighten(bound) >= incumbent_.bound() - opt_.gap_abs) return;

  separate_in_tree(*node, rel.x);

  // Copy-on-branch: both children share one immutable snapshot of the
  // parent's optimal basis (and, in deterministic mode, its factorization).
  // Built before branching so the strong-branch probes can start from it.
  std::shared_ptr<const lp::Basis> basis;
  if (!rel.basis.empty()) basis = std::make_shared<lp::Basis>(std::move(rel.basis));
  std::shared_ptr<const lp::Factorization> pinned = pin_factors_ ? rel.factor : nullptr;

  const int branch_var = pick_branch_var(*node, rel.x, bound, pc_read, pc_write,
                                         basis.get(), rel.factor.get(), sb_ws);
  if (branch_var < 0) {
    try_integral_incumbent(rel.x, node->id);
    return;
  }

  // Occasional node heuristic on shallow nodes, warm-started from this
  // node's own basis and factorization.
  if (opt_.use_rounding_heuristic && node->depth <= 2)
    node_heuristic(heur_ws, *node, rel.x, basis, rel.factor.get(), node->id);

  const double v = rel.x[static_cast<std::size_t>(branch_var)];
  const double floor_v = std::floor(v);
  const double frac = v - floor_v;

  // Effective bounds of the branch variable at this node (later overrides on
  // the same column win, matching sequential set_bounds application).
  double lo = base_.column(branch_var).lower;
  double hi = base_.column(branch_var).upper;
  for (const lp::BoundOverride& o : node->bounds) {
    if (o.column == branch_var) {
      lo = o.lower;
      hi = o.upper;
    }
  }

  auto make_child = [&](double clo, double chi) {
    auto child = std::make_shared<SearchNode>();
    child->bounds = node->bounds;
    child->bounds.push_back({branch_var, clo, chi});
    child->parent_bound = bound;
    child->depth = node->depth + 1;
    child->id = alloc_id();
    child->parent_id = node->id;
    child->branch_frac = frac;
    child->warm_basis = basis;
    child->pinned_factor = pinned;
    push(std::move(child));
  };
  // Down child: x <= floor(v); up child: x >= ceil(v).
  if (floor_v >= lo - 1e-9) make_child(lo, floor_v);
  if (floor_v + 1.0 <= hi + 1e-9) make_child(floor_v + 1.0, hi);
}

void Search::async_worker(int tid) {
  // Workspaces are built lazily at the first popped node: on small trees
  // (or oversubscribed machines) most workers never get one, and the dense
  // workspace allocations would dominate their cost.
  std::optional<lp::WarmSimplex> ws;
  std::optional<lp::WarmSimplex> heur_ws;
  std::optional<lp::WarmSimplex> sb_ws;
  auto ensure_workspaces = [&] {
    if (ws) return;
    lp::SimplexOptions lpopt = opt_.lp;
    lpopt.collect_basis = true;
    lpopt.want_duals = false;
    ws.emplace(base_, lpopt);
    lp::SimplexOptions heur_lpopt = opt_.lp;
    heur_lpopt.collect_basis = false;
    heur_lpopt.want_duals = false;
    heur_ws.emplace(base_, heur_lpopt);
    if (opt_.branching == Branching::kReliability) {
      lp::SimplexOptions sb_lpopt = opt_.lp;
      sb_lpopt.collect_basis = false;
      sb_lpopt.want_duals = false;
      sb_lpopt.max_iterations = std::max(1, opt_.strong_branch_iterations);
      sb_ws.emplace(base_, sb_lpopt);
    }
  };
  FactorCache& cache = *cache_;
  PseudoCostTable pc_read = shared_pc_->snapshot();
  PseudoCostTable pc_delta;
  pc_delta.resize(n_);
  long since_merge = 0;
  const long merge_interval = std::max(1, opt_.pc_merge_interval);
  auto alloc_id = [this] { return next_id_.fetch_add(1, std::memory_order_relaxed); };
  auto push = [this, tid](NodePtr child) { pool_->push(std::move(child), tid); };

  while (NodePtr node = pool_->pop(tid)) {
    const long processed = nodes_.load(std::memory_order_relaxed);
    if (processed >= opt_.max_nodes || work_limit_hit() ||
        elapsed_s() > opt_.time_limit_s) {
      set_cause(processed >= opt_.max_nodes ? Cause::kNodeLimit
                : work_limit_hit()          ? Cause::kWorkLimit
                                            : Cause::kTimeLimit);
      // Keep the node's bound visible to the final best_bound accounting.
      pool_->push(std::move(node), tid);
      pool_->task_done(tid);
      pool_->stop();
      break;
    }
    if (incumbent_.has() &&
        tighten(node->parent_bound) >= incumbent_.bound() - opt_.gap_abs) {
      pool_->task_done(tid);
      continue;
    }
    nodes_.fetch_add(1, std::memory_order_relaxed);

    ensure_workspaces();
    lp::SimplexResult rel;
    if (node->id == 0 && root_pending_) {
      // Only one worker ever pops the root node.
      root_pending_ = false;
      rel = std::move(root_result_);
    } else {
      std::shared_ptr<const lp::Factorization> hint;
      if (node->parent_id >= 0) hint = cache.get(node->parent_id);
      rel = solve_node(*ws, *node, hint.get());
      lp_iterations_.fetch_add(rel.iterations, std::memory_order_relaxed);
    }
    if (rel.optimal() && rel.factor && !pin_factors_) cache.put(node->id, rel.factor);

    process_solved(node, std::move(rel), pc_read, pc_delta, alloc_id, push, &*heur_ws,
                   sb_ws ? &*sb_ws : nullptr);

    if (++since_merge >= merge_interval) {
      shared_pc_->merge(&pc_delta, &pc_read);
      since_merge = 0;
    }
    pool_->task_done(tid);
  }
  if (since_merge > 0) shared_pc_->merge(&pc_delta, nullptr);
}

void Search::run_async(int threads, NodePtr root_node) {
  shared_pc_ = std::make_unique<SharedPseudoCosts>(n_);
  long total_steals = 0;
  for (;;) {
    // A cut-and-branch restart discards the previous tree wholesale, so the
    // pool and the factorization cache (whose factors are bound to the
    // pre-restart row set) are rebuilt each round; pseudo-costs and the
    // incumbent carry over.
    pool_ = std::make_unique<NodePool>(threads);
    cache_ = std::make_unique<FactorCache>(
        static_cast<std::size_t>(std::max(1, opt_.factor_cache_size)));
    pool_->push(std::move(root_node), 0);

    insched::parallel_run(threads, [this](int tid) { async_worker(tid); });

    total_steals += pool_->steals();
    const bool limit =
        cause_.load(std::memory_order_relaxed) != static_cast<int>(Cause::kNone);
    if (!limit && restart_requested_.load(std::memory_order_relaxed)) {
      restart_requested_.store(false, std::memory_order_relaxed);
      if (NodePtr fresh = try_restart()) {
        root_node = std::move(fresh);
        continue;
      }
      // The extended root could not be re-solved; the discarded open nodes
      // mean nothing was proved, so report an honest truncation.
      set_cause(Cause::kNodeLimit);
    }
    break;
  }
  steals_.store(total_steals, std::memory_order_relaxed);
  result_.counters.pc_merges = shared_pc_->merges();
  trunc_open_bound_ = pool_->best_open_bound();
  finalize(/*proved=*/cause_.load(std::memory_order_relaxed) ==
           static_cast<int>(Cause::kNone));
}

void Search::run_deterministic(int threads, NodePtr root_node) {
  std::multiset<NodePtr, NodeOrder> open;
  open.insert(std::move(root_node));
  long next_id_local = 1;
  PseudoCostTable pc;
  pc.resize(n_);
  auto alloc_id = [&next_id_local] { return next_id_local++; };
  auto push = [&open](NodePtr child) { open.insert(std::move(child)); };

  const long wave_cap = std::max(1, opt_.wave_size);
  lp::SimplexOptions lpopt = opt_.lp;
  lpopt.collect_basis = true;
  lpopt.want_duals = false;
  std::vector<std::unique_ptr<lp::WarmSimplex>> ws(static_cast<std::size_t>(threads));

  while (!open.empty()) {
    if (elapsed_s() > opt_.time_limit_s) {
      set_cause(Cause::kTimeLimit);
      break;
    }
    if (work_limit_hit()) {
      set_cause(Cause::kWorkLimit);
      break;
    }
    // Fill the wave in best-bound order, pruning at selection time. The wave
    // size is fixed (independent of `threads`), so the search tree is too.
    std::vector<NodePtr> wave;
    while (static_cast<long>(wave.size()) < wave_cap && !open.empty()) {
      if (nodes_.load(std::memory_order_relaxed) + static_cast<long>(wave.size()) >=
          opt_.max_nodes)
        break;
      NodePtr node = *open.begin();
      open.erase(open.begin());
      if (incumbent_.has() &&
          tighten(node->parent_bound) >= incumbent_.bound() - opt_.gap_abs)
        continue;
      wave.push_back(std::move(node));
    }
    if (wave.empty()) {
      if (!open.empty()) set_cause(Cause::kNodeLimit);
      break;
    }

    // Parallel phase: pure LP solves only. Each solve is a deterministic
    // function of (node bounds, basis, pinned factor), so which thread runs
    // it cannot change the result.
    std::vector<lp::SimplexResult> results(wave.size());
    std::atomic<std::size_t> cursor{0};
    const int wave_threads =
        std::min<int>(threads, static_cast<int>(wave.size()));
    insched::parallel_run(wave_threads, [&](int tid) {
      auto& workspace = ws[static_cast<std::size_t>(tid)];
      for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed); i < wave.size();
           i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        const SearchNode& nd = *wave[i];
        if (nd.id == 0 && root_pending_) {
          root_pending_ = false;
          results[i] = std::move(root_result_);
          continue;
        }
        if (!workspace) workspace = std::make_unique<lp::WarmSimplex>(base_, lpopt);
        results[i] = solve_node(*workspace, nd, nd.pinned_factor.get());
        lp_iterations_.fetch_add(results[i].iterations, std::memory_order_relaxed);
      }
    });

    // Sequential phase: incumbent updates, pruning, pseudo-costs, cut
    // separation, and branching applied in selection order — every stateful
    // decision, cuts included, happens here, so the pool contents and the
    // restart point are bit-identical for any thread count.
    for (std::size_t i = 0; i < wave.size(); ++i) {
      nodes_.fetch_add(1, std::memory_order_relaxed);
      process_solved(wave[i], std::move(results[i]), pc, pc, alloc_id, push, heur_ws_.get(),
                     sb_ws_.get());
    }

    if (restart_requested_.load(std::memory_order_relaxed) &&
        cause_.load(std::memory_order_relaxed) == static_cast<int>(Cause::kNone)) {
      restart_requested_.store(false, std::memory_order_relaxed);
      if (NodePtr fresh = try_restart()) {
        open.clear();
        // Node workspaces are bound to the pre-restart row set.
        for (auto& w : ws) w.reset();
        open.insert(std::move(fresh));
        continue;
      }
      set_cause(Cause::kNodeLimit);
      break;
    }
  }

  if (!open.empty()) trunc_open_bound_ = (*open.begin())->parent_bound;
  finalize(/*proved=*/cause_.load(std::memory_order_relaxed) ==
           static_cast<int>(Cause::kNone));
}

void Search::finalize(bool proved) {
  const auto [inc_obj, inc_x] = incumbent_.snapshot();
  const bool have_inc = std::isfinite(inc_obj);

  result_.nodes = nodes_.load(std::memory_order_relaxed);
  result_.lp_iterations = lp_iterations_.load(std::memory_order_relaxed);
  result_.counters.warm_solves = warm_solves_.load(std::memory_order_relaxed);
  result_.counters.cold_solves = cold_solves_.load(std::memory_order_relaxed);
  result_.counters.warm_failures = warm_failures_.load(std::memory_order_relaxed);
  result_.counters.factor_hits = factor_hits_.load(std::memory_order_relaxed);
  result_.counters.factor_misses = factor_misses_.load(std::memory_order_relaxed);
  result_.counters.heur_warm = heur_warm_.load(std::memory_order_relaxed);
  result_.counters.heur_warm_failed = heur_warm_failed_.load(std::memory_order_relaxed);
  result_.counters.steals = steals_.load(std::memory_order_relaxed);
  result_.counters.lp_ftran = lp_ftran_.load(std::memory_order_relaxed);
  result_.counters.lp_btran = lp_btran_.load(std::memory_order_relaxed);
  result_.counters.lp_refactorizations = lp_refactor_.load(std::memory_order_relaxed);
  result_.counters.lp_eta_pivots = lp_eta_.load(std::memory_order_relaxed);
  result_.counters.lp_rhs_nonzeros = lp_rhs_nnz_.load(std::memory_order_relaxed);
  result_.counters.lp_rhs_dimension = lp_rhs_dim_.load(std::memory_order_relaxed);
  if (cache_) {
    result_.counters.factor_cache_peak_bytes = cache_->peak_bytes();
    result_.counters.factor_cache_peak_dense_bytes = cache_->peak_dense_bytes();
  }
  if (cut_pool_) {
    const CutPoolCounters cc = cut_pool_->counters();
    result_.counters.cuts_separated = cc.separated;
    result_.counters.cuts_applied = cc.applied;
    result_.counters.cuts_aged = cc.aged_out;
    result_.counters.cuts_duplicate = cc.duplicates;
    result_.counters.cuts_evicted = cc.evicted;
  }
  result_.counters.tree_restarts = restarts_done_;
  result_.counters.strong_branch_lps = sb_lps_.load(std::memory_order_relaxed);
  result_.counters.lp_recover_refactor = rec_refactor_.load(std::memory_order_relaxed);
  result_.counters.lp_recover_repair = rec_repair_.load(std::memory_order_relaxed);
  result_.counters.lp_recover_perturb = rec_perturb_.load(std::memory_order_relaxed);
  result_.counters.lp_recover_residual = rec_residual_.load(std::memory_order_relaxed);
  result_.counters.lp_recover_resolve = rec_resolve_.load(std::memory_order_relaxed);
  result_.counters.node_retries = node_retries_.load(std::memory_order_relaxed);
  result_.counters.root_retries = root_retries_.load(std::memory_order_relaxed);

  result_.has_solution = have_inc;
  if (have_inc) {
    result_.x = inc_x;
    result_.objective = maximize_ ? -inc_obj : inc_obj;
  }

  if (proved) {
    result_.status = have_inc ? lp::SolveStatus::kOptimal : lp::SolveStatus::kInfeasible;
    result_.termination =
        have_inc ? MipTermination::kProvedOptimal : MipTermination::kProvedInfeasible;
    const double ob = have_inc ? inc_obj : 0.0;
    result_.best_bound = maximize_ ? -ob : ob;
  } else {
    result_.status = lp::SolveStatus::kIterationLimit;
    switch (static_cast<Cause>(cause_.load(std::memory_order_relaxed))) {
      case Cause::kNodeLimit: result_.termination = MipTermination::kNodeLimit; break;
      case Cause::kWorkLimit: result_.termination = MipTermination::kWorkLimit; break;
      default: result_.termination = MipTermination::kTimeLimit; break;
    }
    double ob = trunc_open_bound_;
    if (have_inc) ob = std::min(ob, inc_obj);
    if (!std::isfinite(ob)) ob = 0.0;
    result_.best_bound = maximize_ ? -ob : ob;
  }
  result_.solve_seconds = elapsed_s();
}

// Appends `cuts` to a trial copy of the base model and re-solves the root
// LP. Commits the rows and the new root result only when the trial solves to
// optimality — the cuts are valid inequalities, so a failure is numerical
// and the base model is left untouched.
bool Search::apply_cuts(const std::vector<Cut>& cuts, lp::SimplexResult* root) {
  if (cuts.empty()) return false;
  lp::Model trial = base_;
  for (const Cut& cut : cuts)
    trial.add_row(cut_family_name(cut.family), cut.type, cut.rhs, cut.entries);
  lp::SimplexOptions root_lp = opt_.lp;
  root_lp.collect_basis = true;
  lp::SimplexResult res = lp::solve_lp(trial, root_lp);
  lp_iterations_.fetch_add(res.iterations, std::memory_order_relaxed);
  add_lp_stats(res);
  if (!res.optimal()) return false;
  base_ = std::move(trial);
  result_.cuts_added += static_cast<int>(cuts.size());
  *root = std::move(res);
  root_x_ = root->x;
  return true;
}

// One root cut round: every enabled separator runs at the current root
// point, offers into the pool, and a violation-ranked parallelism-filtered
// batch is committed. Returns false when the round went dry.
bool Search::separate_root(lp::SimplexResult* root) {
  // Injected separator failure: the round reports dry, which ends the root
  // cutting loop cleanly (cuts only accelerate the search, never gate it).
  if (fault::enabled() && fault::should_fail(fault::Hook::kCutSeparation)) return false;
  if (opt_.use_cover_cuts)
    cut_pool_->add_all(
        generate_cover_cuts(base_, root->x, opt_.cut_min_violation, opt_.lift_cover_cuts));
  if (opt_.use_clique_cuts)
    cut_pool_->add_all(
        generate_clique_cuts(base_, root->x, conflicts_, opt_.cut_min_violation));
  if (opt_.use_mir_cuts)
    cut_pool_->add_all(generate_mir_cuts(base_, root->x, opt_.cut_min_violation));
  if (opt_.use_gomory_cuts && !root->basis.empty()) {
    long btrans = 0;
    cut_pool_->add_all(generate_gomory_cuts(
        base_, root->x, root->basis, root->factor.get(),
        std::max(0, opt_.max_gomory_cuts_per_round), opt_.cut_min_violation, &btrans));
    // The separator's tableau BTRANs happen outside any simplex solve.
    lp_btran_.fetch_add(btrans, std::memory_order_relaxed);
  }
  const std::vector<Cut> selected =
      cut_pool_->select(root->x, std::max(1, opt_.max_root_cuts_per_round),
                        opt_.cut_min_violation, opt_.cut_max_parallel);
  if (selected.empty()) return false;
  return apply_cuts(selected, root);
}

// Workspaces owned by the Search object are bound to the base model's row
// set; rebuilt at startup and after every cut-and-branch restart.
void Search::rebind_workspaces() {
  lp::SimplexOptions heur_lpopt = opt_.lp;
  heur_lpopt.collect_basis = true;
  heur_lpopt.want_duals = false;
  heur_ws_ = std::make_unique<lp::WarmSimplex>(base_, heur_lpopt);
  if (opt_.deterministic && opt_.branching == Branching::kReliability) {
    lp::SimplexOptions sb_lpopt = opt_.lp;
    sb_lpopt.collect_basis = false;
    sb_lpopt.want_duals = false;
    sb_lpopt.max_iterations = std::max(1, opt_.strong_branch_iterations);
    sb_ws_ = std::make_unique<lp::WarmSimplex>(base_, sb_lpopt);
  }
}

// Cut-and-branch restart: drain the pool of everything it accumulated while
// the previous tree ran (in-tree cuts are valid at the root even when the
// root point no longer violates them — they were separated because they cut
// off some node LP optimum), commit what survives the trial re-solve, and
// hand back a fresh root node. Pseudo-costs and the incumbent carry over;
// returns null only when even the unchanged base model fails to re-solve.
NodePtr Search::try_restart() {
  lp::SimplexResult root;
  const int take = std::max(1, opt_.max_root_cuts_per_round) * 2;
  const std::vector<Cut> pooled = cut_pool_->select(
      root_x_, take, -std::numeric_limits<double>::infinity(), opt_.cut_max_parallel);
  if (!apply_cuts(pooled, &root)) {
    lp::SimplexOptions root_lp = opt_.lp;
    root_lp.collect_basis = true;
    root = lp::solve_lp(base_, root_lp);
    lp_iterations_.fetch_add(root.iterations, std::memory_order_relaxed);
    add_lp_stats(root);
    if (!root.optimal()) return nullptr;
  }
  ++restarts_done_;
  rebind_workspaces();
  pin_factors_ = opt_.deterministic && base_.num_rows() <= opt_.pin_factor_rows;

  auto node = std::make_shared<SearchNode>();
  node->parent_bound = internal(root.objective);
  node->id = 0;
  root_result_ = std::move(root);
  root_pending_ = true;
  return node;
}

MipResult Search::run() {
  start_ = Clock::now();
  n_ = base_.num_columns();
  int threads = opt_.threads;
  if (threads <= 0) threads = insched::thread_count();
  threads = std::max(1, threads);
  if (!opt_.oversubscribe) {
    const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    threads = std::min(threads, hw);
  }
  result_.threads_used = threads;

  // --- Root LP with optional cut rounds ---------------------------------
  lp::SimplexOptions root_lp = opt_.lp;
  root_lp.collect_basis = true;
  lp::SimplexResult root = lp::solve_lp(base_, root_lp);
  lp_iterations_.fetch_add(root.iterations, std::memory_order_relaxed);
  add_lp_stats(root);
  if (root.status == lp::SolveStatus::kNumericalFailure && opt_.lp.enable_recovery) {
    // The engine's own ladder is exhausted; one conservative re-solve (full
    // Dantzig pricing, frequent refactorization) before giving up on the
    // whole MILP — everything downstream depends on this one LP.
    root_retries_.fetch_add(1, std::memory_order_relaxed);
    lp::SimplexOptions careful = root_lp;
    careful.price_block_size = 0;
    careful.refactor_interval = 32;
    root = lp::solve_lp(base_, careful);
    lp_iterations_.fetch_add(root.iterations, std::memory_order_relaxed);
    add_lp_stats(root);
  }
  auto bail = [&](lp::SolveStatus status, MipTermination termination) {
    result_.status = status;
    result_.termination = termination;
    result_.lp_iterations = lp_iterations_.load(std::memory_order_relaxed);
    result_.counters.lp_recover_refactor = rec_refactor_.load(std::memory_order_relaxed);
    result_.counters.lp_recover_repair = rec_repair_.load(std::memory_order_relaxed);
    result_.counters.lp_recover_perturb = rec_perturb_.load(std::memory_order_relaxed);
    result_.counters.lp_recover_residual = rec_residual_.load(std::memory_order_relaxed);
    result_.counters.lp_recover_resolve = rec_resolve_.load(std::memory_order_relaxed);
    result_.counters.root_retries = root_retries_.load(std::memory_order_relaxed);
    result_.solve_seconds = elapsed_s();
    return result_;
  };
  if (root.status == lp::SolveStatus::kInfeasible)
    return bail(lp::SolveStatus::kInfeasible, MipTermination::kProvedInfeasible);
  if (root.status == lp::SolveStatus::kUnbounded) {
    // The relaxation is unbounded; for the models this library builds that
    // means the MIP itself is unbounded or mis-built. Report as-is.
    return bail(lp::SolveStatus::kUnbounded, MipTermination::kUnbounded);
  }
  if (!root.optimal()) return bail(root.status, MipTermination::kNumericalFailure);

  // Cut pool + conflict graph live for the whole search (in-tree separation
  // and restarts use them); the root rounds run all families — the trial
  // re-solve inside apply_cuts() guarantees a failed cut LP never replaces
  // the working root, so no recovery pass is needed here.
  cut_pool_ = std::make_unique<CutPool>(std::max(1, opt_.cut_max_age),
                                        std::max(0, opt_.cut_pool_capacity));
  if (opt_.use_clique_cuts) conflicts_.build(base_, implications_);
  root_x_ = root.x;
  if (cuts_enabled()) {
    for (int round = 0; round < opt_.max_cut_rounds; ++round) {
      if (!separate_root(&root)) break;
    }
  }

  // Deterministic mode keeps one sequential heuristic workspace (and, under
  // reliability branching, one strong-branching workspace); async workers
  // build their own. collect_basis stays on so warm_dive can chain each step
  // from the previous one's exported basis.
  rebind_workspaces();

  // Root heuristic: an early incumbent makes pruning effective immediately.
  // Heuristic offers use pseudo node id -1 so they win objective ties against
  // any tree node, independent of discovery order.
  if (opt_.use_rounding_heuristic) {
    SearchNode root_ctx;  // empty bound set = root subproblem
    if (!root.basis.empty()) {
      if (auto x = warm_round_and_fix(*heur_ws_, root_ctx, root.x, root.basis,
                                      root.factor.get())) {
        offer_point(*x, -1);
      } else {
        // The root dive must be deep enough to walk a fully fractional
        // point to integrality: on the staircase models a budget row can
        // spread thinly across every step binary, so a fixed shallow depth
        // would abandon the dive with hundreds of fractionals left and the
        // search would run without any incumbent at all.
        const int dive_depth = std::max(64, base_.num_columns() + 16);
        if (auto xd = warm_dive(*heur_ws_, root_ctx, root.x, root.basis, root.factor.get(),
                                dive_depth)) {
          offer_point(*xd, -1);
        }
      }
    } else {
      // Cold path only when the root solve could not export a basis.
      if (auto x = round_and_fix(base_, root.x, opt_.lp, opt_.int_tol)) offer_point(*x, -1);
      else if (auto xd = dive(base_, root.x, opt_.lp, opt_.int_tol)) offer_point(*xd, -1);
    }
  }

  pin_factors_ = opt_.deterministic && base_.num_rows() <= opt_.pin_factor_rows;

  auto root_node = std::make_shared<SearchNode>();
  root_node->parent_bound = internal(root.objective);
  root_node->id = 0;
  root_result_ = std::move(root);
  root_pending_ = true;

  if (opt_.deterministic) run_deterministic(threads, std::move(root_node));
  else run_async(threads, std::move(root_node));
  return result_;
}

}  // namespace

MipResult solve_mip(const lp::Model& model, const MipOptions& options) {
  if (!options.fault_spec.empty() && !fault::arm_from_spec(options.fault_spec))
    INSCHED_LOG_WARN("mip: malformed fault_spec '%s' ignored", options.fault_spec.c_str());

  if (!model.has_integers()) {
    // Pure LP: answer directly.
    const lp::SimplexResult res = lp::solve_lp(model, options.lp);
    MipResult out;
    out.status = res.status;
    out.has_solution = res.optimal();
    out.objective = res.objective;
    out.best_bound = res.objective;
    out.x = res.x;
    out.lp_iterations = res.iterations;
    switch (res.status) {
      case lp::SolveStatus::kOptimal: out.termination = MipTermination::kProvedOptimal; break;
      case lp::SolveStatus::kInfeasible:
        out.termination = MipTermination::kProvedInfeasible;
        break;
      case lp::SolveStatus::kUnbounded: out.termination = MipTermination::kUnbounded; break;
      default: out.termination = MipTermination::kNumericalFailure; break;
    }
    return out;
  }

  // Reduction pipeline: generic LP presolve first, then probing presolve
  // over the binaries of the reduced model. Each stage pushes its restore
  // mapping; the incumbent is expanded back through them in reverse order.
  MipOptions inner = options;
  inner.fault_spec.clear();  // already armed; a recursive call must not re-arm
  lp::Model work = model;
  std::vector<lp::PresolveResult> stack;
  std::vector<Implication> implications;
  MipCounters probing_counters;

  const auto infeasible_out = [] {
    MipResult out;
    out.status = lp::SolveStatus::kInfeasible;
    out.termination = MipTermination::kProvedInfeasible;
    return out;
  };

  if (options.use_presolve) {
    lp::PresolveResult pre = lp::presolve(work);
    if (pre.infeasible) return infeasible_out();
    if (pre.removed_columns > 0 || pre.removed_rows > 0) {
      work = pre.reduced;
      stack.push_back(std::move(pre));
    }
    inner.use_presolve = false;  // already applied
  }

  if (options.use_probing && work.has_integers()) {
    const ProbingResult probing = probe_binaries(work);
    probing_counters.probing_probes = probing.probes;
    probing_counters.probing_fixed = static_cast<long>(probing.fixed_columns.size());
    probing_counters.probing_aggregated = static_cast<long>(probing.aggregations.size());
    probing_counters.probing_implications = static_cast<long>(probing.implications.size());
    if (probing.infeasible) return infeasible_out();
    if (probing.has_reductions()) {
      long tightened = 0;
      lp::PresolveResult pre = apply_probing(work, probing, &tightened);
      probing_counters.probing_tightened = tightened;
      if (pre.infeasible) return infeasible_out();
      // Conflict implications feed the clique separator; remap them onto the
      // probed model's column space, dropping any whose endpoint was
      // eliminated (its conflicts are already encoded in the reduction).
      for (const Implication& imp : probing.implications) {
        const int a = pre.column_map[static_cast<std::size_t>(imp.antecedent)];
        const int c = pre.column_map[static_cast<std::size_t>(imp.consequent)];
        if (a >= 0 && c >= 0 && a != c)
          implications.push_back(Implication{a, imp.value, c, imp.forced});
      }
      work = pre.reduced;
      stack.push_back(std::move(pre));
    } else {
      implications = probing.implications;
    }
  }

  const auto restore_through = [&stack](MipResult& out) {
    if (!out.has_solution) return;
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) out.x = it->restore(out.x);
  };

  if (!work.has_integers()) {
    // Probing fixed every integer: what is left is a pure LP.
    MipResult out = solve_mip(work, inner);
    out.counters.probing_probes = probing_counters.probing_probes;
    out.counters.probing_fixed = probing_counters.probing_fixed;
    out.counters.probing_aggregated = probing_counters.probing_aggregated;
    out.counters.probing_implications = probing_counters.probing_implications;
    out.counters.probing_tightened = probing_counters.probing_tightened;
    restore_through(out);
    return out;
  }

  Search solver(work, inner, std::move(implications));
  MipResult out = solver.run();
  out.counters.probing_probes = probing_counters.probing_probes;
  out.counters.probing_fixed = probing_counters.probing_fixed;
  out.counters.probing_aggregated = probing_counters.probing_aggregated;
  out.counters.probing_implications = probing_counters.probing_implications;
  out.counters.probing_tightened = probing_counters.probing_tightened;
  restore_through(out);
  return out;
}

}  // namespace insched::mip
