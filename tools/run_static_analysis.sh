#!/usr/bin/env bash
# Aggregate static-analysis gate (docs/STATIC_ANALYSIS.md). Three stages,
# each skipped gracefully when its toolchain is missing:
#
#   1. thread-safety negative-compile gate (tools/check_thread_safety.sh):
#      Clang -Wthread-safety must accept correctly locked code and reject a
#      deliberately mis-locked access.
#   2. full tree build with Clang, -Wthread-safety and warnings-as-errors
#      (-DINSCHED_WERROR=ON), in its own build tree so the default build is
#      untouched; also exports compile_commands.json for stage 3.
#   3. clang-tidy (config: .clang-tidy) over the src/ translation units.
#
# The runtime counterparts (ASan/UBSan, TSan) live in tools/run_asan.sh and
# tools/run_tsan.sh; this script is the compile-time half of the gate and is
# what the opt-in `static_analysis_smoke` ctest target runs.
#
#   tools/run_static_analysis.sh          # all stages
#   BUILD_DIR=/tmp/sa tools/run_static_analysis.sh
#
# Exit codes: 0 = every runnable stage passed, 1 = a stage failed,
# 77 = nothing could run (no Clang toolchain at all; ctest skip convention).

set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-static-analysis}"
clangxx="${CLANGXX:-clang++}"
tidy="${CLANG_TIDY:-clang-tidy}"

ran=0
failed=0

echo "=== stage 1: thread-safety negative-compile gate"
"$repo_root/tools/check_thread_safety.sh"
rc=$?
if [ "$rc" -eq 77 ]; then
  echo "stage 1: skipped"
elif [ "$rc" -ne 0 ]; then
  ran=1
  failed=1
else
  ran=1
fi

if command -v "$clangxx" >/dev/null 2>&1; then
  echo "=== stage 2: Clang build with -Wthread-safety -Werror"
  ran=1
  if cmake -B "$build_dir" -S "$repo_root" \
       -DCMAKE_BUILD_TYPE=RelWithDebInfo \
       -DCMAKE_CXX_COMPILER="$clangxx" \
       -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
       -DINSCHED_WERROR=ON &&
     cmake --build "$build_dir" -j; then
    echo "stage 2: OK"
  else
    echo "stage 2: FAIL (thread-safety or warnings-as-errors violation)" >&2
    failed=1
  fi

  if command -v "$tidy" >/dev/null 2>&1 && [ -f "$build_dir/compile_commands.json" ]; then
    echo "=== stage 3: clang-tidy over src/"
    # shellcheck disable=SC2046 — the file list is intentionally word-split.
    if "$tidy" -p "$build_dir" --quiet $(find "$repo_root/src" -name '*.cpp' | sort); then
      echo "stage 3: OK"
    else
      echo "stage 3: FAIL (see diagnostics above; config in .clang-tidy)" >&2
      failed=1
    fi
  else
    echo "=== stage 3: clang-tidy not available; skipped"
  fi
else
  echo "=== stages 2-3: no '$clangxx' in PATH; skipped"
fi

if [ "$ran" -eq 0 ]; then
  echo "run_static_analysis: no Clang toolchain available; nothing ran" >&2
  exit 77
fi
exit "$failed"
