#!/usr/bin/env bash
# Negative-compile gate for the Clang thread-safety annotations
# (src/insched/support/thread_annotations.hpp, docs/STATIC_ANALYSIS.md).
#
# Two syntax-only compiles under -Wthread-safety -Werror:
#   tests/static_analysis/thread_safety_positive.cpp  must be ACCEPTED
#   tests/static_analysis/thread_safety_negative.cpp  must be REJECTED,
#     and rejected specifically by a thread-safety diagnostic
#
# The pair proves both directions: the annotations permit correct locking
# and actually forbid a mis-locked access (i.e. they have not degraded to
# no-ops under a compiler that should enforce them).
#
# Exit codes: 0 = gate passed, 1 = gate failed, 77 = skipped (no clang++ in
# PATH / CLANGXX — the annotations are no-ops off Clang, so there is
# nothing to check). 77 is ctest's skip convention (SKIP_RETURN_CODE).

set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
clangxx="${CLANGXX:-clang++}"

if ! command -v "$clangxx" >/dev/null 2>&1; then
  echo "check_thread_safety: no '$clangxx' in PATH; skipping" \
       "(thread-safety analysis is Clang-only)" >&2
  exit 77
fi

flags=(-std=c++20 -fsyntax-only -Wthread-safety -Werror -I "$repo_root/src")

echo "== positive TU: correctly locked code must compile"
if ! "$clangxx" "${flags[@]}" \
     "$repo_root/tests/static_analysis/thread_safety_positive.cpp"; then
  echo "check_thread_safety: FAIL — correctly locked code was rejected;" \
       "the annotations are inconsistent" >&2
  exit 1
fi

echo "== negative TU: mis-locked access must be rejected"
if out=$("$clangxx" "${flags[@]}" \
         "$repo_root/tests/static_analysis/thread_safety_negative.cpp" 2>&1); then
  echo "check_thread_safety: FAIL — the mis-locked TU compiled;" \
       "-Wthread-safety is not enforcing the annotations" >&2
  exit 1
fi
if ! grep -q "thread-safety" <<<"$out"; then
  echo "check_thread_safety: FAIL — the negative TU failed for the wrong reason:" >&2
  echo "$out" >&2
  exit 1
fi

echo "check_thread_safety: OK — mis-locked access rejected, locked access accepted"
