// insched_lint — pre-solve static analyzer for scheduling instances.
//
// Reads the same INI problem description as insched_plan, runs the model
// linter (scheduler/lint.hpp) over the instance and over the MILP generated
// from it, and prints structured diagnostics. Nothing is solved; a lint run
// on the largest instance costs milliseconds.
//
//   insched_lint <problem.ini> [--json] [--strict] [--no-model]
//     --json       machine-readable report on stdout
//     --strict     warnings use the error exit code
//     --no-model   lint only the instance, skip the generated MILP
//
// Exit codes: 0 = clean (info-only notes allowed), 1 = warnings,
//             2 = errors (2 also covers warnings under --strict),
//             3 = usage error or unreadable/unparseable input.
//
// Diagnostic catalog: docs/STATIC_ANALYSIS.md.

#include <cstdio>
#include <exception>
#include <string>

#include "insched/scheduler/aggregate_milp.hpp"
#include "insched/scheduler/lint.hpp"
#include "insched/scheduler/problem_io.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s <problem.ini> [--json] [--strict] [--no-model]\n", argv0);
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace insched;

  std::string config_path;
  bool json = false;
  bool strict = false;
  bool lint_milp = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--no-model") {
      lint_milp = false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (config_path.empty()) return usage(argv[0]);

  try {
    const Config config = Config::load(config_path);
    // Lenient parse: value errors become diagnostics instead of exceptions.
    const scheduler::ScheduleProblem problem =
        scheduler::problem_from_config_lenient(config);

    scheduler::LintReport report = scheduler::lint_problem(problem);
    // The MILP can only be generated from a structurally sane instance.
    if (lint_milp && !report.has_errors())
      report.merge(scheduler::lint_model(scheduler::build_aggregate_milp(problem).model));

    if (json)
      std::printf("%s\n", report.to_json().c_str());
    else
      std::printf("%s", report.to_string().c_str());
    return report.exit_code(strict);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
