#!/usr/bin/env bash
# AddressSanitizer + UBSan pass over the solver. Configures a separate build
# tree with -DINSCHED_SANITIZE=address,undefined and runs the tests that
# stress the sparse LU factorization and its FTRAN/BTRAN paths (pointer-heavy
# eta-file updates, snapshot serialization round-trips) plus the simplex and
# branch-and-bound layers built on top of them.
#
#   tools/run_asan.sh              # build + run the default test set
#   tools/run_asan.sh test_factor  # build + run a specific ctest regex
#
# Keep the heavy concurrency pass in tools/run_tsan.sh; the two sanitizers
# cannot share one build tree.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-asan}"
filter="${1:-test_factor|test_lp|test_warm_simplex|test_mip|test_cuts|test_serialize|test_support}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DINSCHED_SANITIZE=address,undefined
cmake --build "$build_dir" -j

cd "$build_dir"
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}" \
  ctest --output-on-failure -R "$filter"
