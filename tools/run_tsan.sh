#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrent solver paths. Configures a
# separate build tree with -DINSCHED_SANITIZE=thread and runs the tests that
# exercise the parallel branch-and-bound (work-stealing node pool, factor
# cache, shared pseudo-costs, incumbent) plus the support thread pool.
#
#   tools/run_tsan.sh              # build + run the concurrency tests
#   tools/run_tsan.sh test_mip     # build + run a specific ctest regex
#
# TSan needs OpenMP workloads built against the sanitized archer runtime to
# avoid false positives; the solver tests below use std::thread only, so
# they are reliable either way.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-tsan}"
filter="${1:-test_mip_parallel|test_mip|test_cuts|test_warm_simplex|test_support}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DINSCHED_SANITIZE=thread
cmake --build "$build_dir" -j

cd "$build_dir"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}" \
  ctest --output-on-failure -R "$filter"
