// insched_plan — command-line in-situ analysis planner.
//
// Reads a problem description (INI format, see scheduler/problem_io.hpp),
// solves for the optimal schedule and prints the recommendation, the
// validation report and optionally the timeline / baselines / sensitivity.
//
//   insched_plan run.ini [options]
//     --lexicographic       strict-priority treatment of weights
//     --time-expanded       use the paper's per-step 0-1 formulation
//     --baselines           compare against greedy and fixed frequencies
//     --sensitivity         budget shadow price and next-improvement budget
//     --render N            print the first N steps of the timeline
//     --csv FILE            write per-analysis schedule rows as CSV
//     --json FILE           write the full solution as JSON
//     --gantt               print a per-analysis timeline
//     --pareto              budget-vs-objective frontier around the budget
//     --dump-model          print the MILP in CPLEX LP format
//     --hybrid              in-situ / in-transit placement (needs [staging])
//     --lint[=strict]       pre-solve lint of the instance and generated
//                           MILP; errors (warnings too under =strict) abort
//                           the solve with exit code 4

#include <cmath>
#include <cstdio>
#include <fstream>
#include <cstring>
#include <stdexcept>
#include <string>

#include "insched/lp/lp_format.hpp"
#include "insched/scheduler/aggregate_milp.hpp"
#include "insched/scheduler/coanalysis.hpp"
#include "insched/scheduler/greedy.hpp"
#include "insched/scheduler/lint.hpp"
#include "insched/scheduler/problem_io.hpp"
#include "insched/scheduler/recommend.hpp"
#include "insched/scheduler/sensitivity.hpp"
#include "insched/scheduler/serialize.hpp"
#include "insched/scheduler/validator.hpp"
#include "insched/support/csv.hpp"
#include "insched/support/string_util.hpp"
#include "insched/support/table.hpp"

namespace {

using namespace insched;

int usage(const char* argv0) {
  std::printf(
      "usage: %s <problem.ini> [--lexicographic] [--time-expanded]\n"
      "          [--baselines] [--sensitivity] [--render N] [--csv FILE]\n"
      "          [--dump-model]   (prints the MILP in CPLEX LP format)\n"
      "          [--hybrid]       (in-situ / in-transit; needs [staging])\n"
      "          [--lint[=strict]] (pre-solve lint; blocking findings exit 4)\n",
      argv0);
  return 2;
}

void print_baselines(const scheduler::ScheduleProblem& problem,
                     const scheduler::ScheduleSolution& optimal) {
  Table table("baselines vs optimizer");
  table.set_header({"method", "frequencies", "objective", "budget %", "feasible"});
  std::vector<double> weights;
  for (const auto& a : problem.analyses) weights.push_back(a.weight);
  const auto row = [&](const char* name, const scheduler::Schedule& s) {
    const auto rep = scheduler::validate_schedule(problem, s);
    std::string freqs;
    for (long f : s.frequencies()) freqs += format("%ld ", f);
    table.add_row({name, freqs, format("%.2f", s.objective(weights)),
                   format("%.1f", 100.0 * rep.utilization()),
                   rep.feasible ? "yes" : "NO"});
  };
  row("MILP optimal", optimal.schedule);
  row("greedy", scheduler::greedy_schedule(problem));
  for (long interval : {problem.steps / 10, problem.steps / 4}) {
    if (interval >= 1)
      row(format("fixed every %ld", interval).c_str(),
          scheduler::fixed_frequency(problem, interval));
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  std::string config_path;
  bool lexicographic = false;
  bool time_expanded = false;
  bool baselines = false;
  bool sensitivity = false;
  bool dump_model = false;
  bool hybrid = false;
  bool lint = false;
  bool lint_strict = false;
  long render_steps = 0;
  bool gantt = false;
  bool pareto = false;
  std::string csv_path;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lexicographic") {
      lexicographic = true;
    } else if (arg == "--time-expanded") {
      time_expanded = true;
    } else if (arg == "--baselines") {
      baselines = true;
    } else if (arg == "--sensitivity") {
      sensitivity = true;
    } else if (arg == "--dump-model") {
      dump_model = true;
    } else if (arg == "--hybrid") {
      hybrid = true;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--lint=strict") {
      lint = true;
      lint_strict = true;
    } else if (arg == "--render" && i + 1 < argc) {
      render_steps = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (arg == "--pareto") {
      pareto = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (config_path.empty()) {
      config_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (config_path.empty()) return usage(argv[0]);

  // 0 = optimal/feasible plan, 1 = no schedule, 2 = usage, 3 = degraded
  // (greedy fallback printed, but the MILP solve failed), 4 = --lint found
  // blocking diagnostics and the solve was not attempted.
  int exit_code = 0;
  try {
    const Config config = Config::load(config_path);

    if (hybrid) {
      const scheduler::CoanalysisProblem problem = scheduler::coanalysis_from_config(config);
      const scheduler::CoanalysisSolution sol = scheduler::solve_coanalysis(problem);
      if (!sol.solved) {
        std::printf("no feasible hybrid schedule\n");
        return 1;
      }
      Table table("hybrid in-situ / in-transit plan");
      table.set_header({"analysis", "mode", "frequency"});
      for (std::size_t i = 0; i < problem.base.size(); ++i) {
        table.add_row({problem.base.analyses[i].name, to_string(sol.modes[i]),
                       format("%ld", sol.frequencies[i])});
      }
      table.print();
      std::printf("sim-side %.2f s of %.2f s budget; staging %.2f s; shipped %s\n",
                  sol.sim_side_seconds, problem.base.time_budget(), sol.staging_seconds,
                  format_bytes(sol.network_bytes).c_str());
      std::printf("solver: %.2f ms, %ld nodes, %s\n", sol.solver_seconds * 1e3, sol.nodes,
                  sol.proven_optimal ? "proven optimal" : "feasible (limit hit)");
      return 0;
    }

    // Under --lint the config is read leniently so the linter can report
    // every value error at once instead of throwing on the first; blocking
    // findings exit before the unvalidated values could reach the solver.
    const scheduler::ScheduleProblem problem =
        lint ? scheduler::problem_from_config_lenient(config)
             : scheduler::problem_from_config(config);

    if (lint) {
      // Pre-solve static analysis; purely advisory unless it finds blocking
      // diagnostics, so a clean config plans exactly as without --lint.
      scheduler::LintReport lint_report = scheduler::lint_problem(problem);
      // The generated model is only meaningful for a sane instance.
      if (!lint_report.has_errors())
        lint_report.merge(
            scheduler::lint_model(scheduler::build_aggregate_milp(problem).model));
      if (!lint_report.clean())
        std::fprintf(stderr, "%s", lint_report.to_string().c_str());
      if (lint_report.exit_code(lint_strict) >= 2) {
        std::fprintf(stderr, "lint: blocking diagnostics, not solving\n");
        return 4;
      }
    }

    if (dump_model) {
      // CPLEX LP format: feed the exact instance to an external solver.
      const scheduler::AggregateModel built = scheduler::build_aggregate_milp(problem);
      std::printf("%s\n", lp::write_lp(built.model).c_str());
    }

    scheduler::SolveOptions options;
    if (lexicographic) options.weight_mode = scheduler::WeightMode::kLexicographic;
    if (time_expanded) options.formulation = scheduler::Formulation::kTimeExpanded;

    const scheduler::Recommendation rec = scheduler::recommend(problem, options);
    if (!rec.solution.solved) {
      const auto& d = rec.solution.diagnostics;
      std::fprintf(stderr, "error: no feasible schedule (%s%s%s)\n",
                   scheduler::to_string(d.failure),
                   d.message.empty() ? "" : ": ", d.message.c_str());
      return 1;
    }
    if (rec.solution.degraded) {
      // The MILP failed and the greedy fallback was substituted; the plan
      // below is feasible but carries no optimality certificate.
      const auto& d = rec.solution.diagnostics;
      std::fprintf(stderr, "warning: DEGRADED schedule (%s: %s); greedy fallback, "
                   "no optimality certificate\n",
                   scheduler::to_string(d.failure), d.message.c_str());
      exit_code = 3;
    }
    std::printf("%s", rec.summary.c_str());
    const auto& report = rec.solution.validation;
    std::printf("\npredicted totals: analysis %.3f s of %.3f s budget (%.1f%%), "
                "peak memory %s of %s\n",
                report.total_analysis_time, report.time_budget,
                100.0 * report.utilization(), format_bytes(report.peak_memory).c_str(),
                std::isfinite(report.memory_budget)
                    ? format_bytes(report.memory_budget).c_str()
                    : "unbounded");
    std::printf("solver: %.2f ms, %ld nodes, %s\n", rec.solution.solver_seconds * 1e3,
                rec.solution.nodes,
                rec.solution.proven_optimal     ? "proven optimal"
                : rec.solution.degraded         ? "DEGRADED (greedy fallback)"
                                                : "feasible (limit hit)");
    if (!rec.solution.proven_optimal && !rec.solution.degraded &&
        std::isfinite(rec.solution.diagnostics.gap_abs))
      std::printf("gap: %.6g absolute (%.3f%% relative)\n",
                  rec.solution.diagnostics.gap_abs,
                  100.0 * rec.solution.diagnostics.gap_rel);
    if (rec.solution.diagnostics.recoveries > 0)
      std::printf("numerical recoveries during solve: %ld\n",
                  rec.solution.diagnostics.recoveries);

    if (render_steps > 0)
      std::printf("\ntimeline: %s\n", rec.solution.schedule.render(render_steps).c_str());

    if (gantt) std::printf("\n%s", scheduler::render_gantt(rec.solution.schedule).c_str());

    if (!json_path.empty()) {
      std::ofstream json_out(json_path);
      json_out << scheduler::solution_to_json(rec.solution) << "\n";
      std::printf("\nsolution written to %s\n", json_path.c_str());
    }

    if (baselines) {
      std::printf("\n");
      print_baselines(problem, rec.solution);
    }

    if (pareto) {
      const double budget = problem.time_budget();
      const auto frontier =
          scheduler::pareto_frontier(problem, budget * 0.1, budget * 4.0, 20);
      Table table("\nbudget vs objective (Pareto frontier)");
      table.set_header({"budget (s)", "objective", "frequencies"});
      for (const auto& point : frontier) {
        std::string freqs;
        for (long f : point.frequencies) freqs += format("%ld ", f);
        table.add_row({format("%.2f", point.budget_seconds),
                       format("%.1f", point.objective), freqs});
      }
      table.print();
    }

    if (sensitivity) {
      const scheduler::SensitivityReport sens = scheduler::analyze_sensitivity(problem);
      std::printf("\nsensitivity:\n");
      std::printf("  time budget %s (LP shadow price %.4f obj/s)\n",
                  sens.time_constraint_binding ? "BINDING" : "slack",
                  sens.time_shadow_price);
      if (std::isfinite(problem.mth))
        std::printf("  memory budget %s (LP shadow price %.3g obj/byte)\n",
                    sens.memory_constraint_binding ? "BINDING" : "slack",
                    sens.memory_shadow_price);
      if (sens.next_improvement_seconds >= 0.0)
        std::printf("  +%.2f s of budget buys the next analysis step (obj %.2f -> %.2f)\n",
                    sens.next_improvement_seconds, sens.objective, sens.objective_plus);
      else
        std::printf("  no objective improvement within +100%% budget\n");
    }

    if (!csv_path.empty()) {
      CsvWriter csv(csv_path);
      csv.write_row({"analysis", "frequency", "outputs", "steps"});
      for (std::size_t i = 0; i < problem.size(); ++i) {
        const auto& s = rec.solution.schedule.analysis(i);
        std::string steps;
        for (long step : s.analysis_steps) steps += format("%ld ", step);
        csv.write_row({problem.analyses[i].name, format("%ld", s.analysis_count()),
                       format("%ld", s.output_count()), steps});
      }
      std::printf("\nschedule written to %s\n", csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return exit_code;
}
