// insched_probe — measures the Table-1 cost parameters of the built-in
// analysis kernels on synthetic systems and emits ready-to-edit [analysis]
// config blocks for insched_plan. Closes the paper's workflow loop:
// profile (Section 4) -> model -> schedule.
//
//   insched_probe water [molecules=4000] [write_bw=1e9]
//   insched_probe rhodopsin [particles=32000] [write_bw=1e9]
//   insched_probe sedov [grid=32] [write_bw=1e9]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "insched/analysis/cost_probe.hpp"
#include "insched/analysis/density_histogram.hpp"
#include "insched/analysis/error_norms.hpp"
#include "insched/analysis/gyration.hpp"
#include "insched/analysis/msd.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/analysis/vacf.hpp"
#include "insched/analysis/vorticity.hpp"
#include "insched/sim/grid/sedov.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/sim/particles/lj_md.hpp"
#include "insched/support/string_util.hpp"

namespace {

using namespace insched;

void emit(const scheduler::AnalysisParams& p) {
  std::printf("\n[analysis]\nname = %s\n", p.name.c_str());
  if (p.ft > 1e-9) std::printf("ft = %.6g s\n", p.ft);
  if (p.it > 1e-9) std::printf("it = %.6g s\n", p.it);
  std::printf("ct = %.6g s\n", p.ct);
  if (p.ot > 1e-12) std::printf("ot = %.6g s\n", p.ot);
  if (p.fm > 0.5) std::printf("fm = %.6g\n", p.fm);
  if (p.im > 0.5) std::printf("im = %.6g\n", p.im);
  if (p.cm > 0.5) std::printf("cm = %.6g\n", p.cm);
  if (p.om > 0.5) std::printf("om = %.6g\n", p.om);
  std::printf("itv = 1   ; edit: minimum interval between analysis steps\n");
}

double measure_sim_step(const std::function<void()>& step, int rounds = 5) {
  const auto begin = std::chrono::steady_clock::now();
  for (int s = 0; s < rounds; ++s) step();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count() /
         rounds;
}

int probe_water(std::size_t molecules, double write_bw) {
  sim::WaterIonsSpec spec;
  spec.molecules = molecules;
  spec.hydronium_fraction = 0.02;
  spec.ion_fraction = 0.02;
  sim::LjSimulation md(sim::water_ions(spec), sim::MdParams{});
  md.minimize(100);
  md.thermalize(9);
  const double sim_step = measure_sim_step([&] { md.step(); });

  std::printf("# probed on a %zu-particle water+ions system\n[run]\n", md.system().size());
  std::printf("steps = 1000\nsim_time_per_step = %.6g s\nthreshold = 10 %%\n", sim_step);
  std::printf("threshold_kind = fraction\nbandwidth = %.6g\noutput_policy = every_analysis\n",
              write_bw);

  analysis::ProbeOptions options;
  options.write_bw = write_bw;

  analysis::RdfConfig a1;
  a1.pairs = {{sim::Species::kHydronium, sim::Species::kWaterO},
              {sim::Species::kHydronium, sim::Species::kHydronium},
              {sim::Species::kHydronium, sim::Species::kIon}};
  analysis::RdfAnalysis rdf1("hydronium rdf (A1)", md.system(), a1);
  emit(analysis::probe_analysis(rdf1, options));

  analysis::RdfConfig a2;
  a2.pairs = {{sim::Species::kIon, sim::Species::kWaterO},
              {sim::Species::kIon, sim::Species::kIon}};
  analysis::RdfAnalysis rdf2("ion rdf (A2)", md.system(), a2);
  emit(analysis::probe_analysis(rdf2, options));

  analysis::VacfConfig a3;
  a3.group = {sim::Species::kWaterO, sim::Species::kHydronium, sim::Species::kIon};
  analysis::VacfAnalysis vacf("vacf (A3)", md.system(), a3);
  emit(analysis::probe_analysis(vacf, options));

  analysis::MsdConfig a4;
  a4.group = {sim::Species::kHydronium, sim::Species::kIon};
  analysis::MsdAnalysis msd("msd (A4)", md.system(), a4);
  emit(analysis::probe_analysis(msd, options));
  return 0;
}

int probe_rhodopsin(std::size_t particles, double write_bw) {
  sim::RhodopsinSpec spec;
  spec.total_particles = particles;
  sim::LjSimulation md(sim::rhodopsin_like(spec), sim::MdParams{});
  md.minimize(60);
  md.thermalize(9);
  const double sim_step = measure_sim_step([&] { md.step(); });

  std::printf("# probed on a %zu-particle rhodopsin-like system\n[run]\n",
              md.system().size());
  std::printf("steps = 1000\nsim_time_per_step = %.6g s\nthreshold = 10 %%\n", sim_step);
  std::printf("threshold_kind = fraction\nbandwidth = %.6g\noutput_policy = every_analysis\n",
              write_bw);

  analysis::ProbeOptions options;
  options.write_bw = write_bw;
  analysis::GyrationAnalysis rg("radius of gyration (R1)", md.system(),
                                sim::Species::kProtein);
  emit(analysis::probe_analysis(rg, options));
  analysis::DensityHistogramConfig r2;
  r2.group = sim::Species::kMembrane;
  analysis::DensityHistogramAnalysis mem("membrane histogram (R2)", md.system(), r2);
  emit(analysis::probe_analysis(mem, options));
  analysis::DensityHistogramConfig r3;
  r3.group = sim::Species::kProtein;
  analysis::DensityHistogramAnalysis prot("protein histogram (R3)", md.system(), r3);
  emit(analysis::probe_analysis(prot, options));
  return 0;
}

int probe_sedov(std::size_t grid, double write_bw) {
  sim::EulerSolver solver(sim::GridGeometry{grid, 1.0}, sim::EulerParams{});
  sim::SedovSpec blast;
  sim::initialize_sedov(solver, blast);
  const sim::SedovReference reference(blast, solver.params().gamma);
  const double sim_step = measure_sim_step([&] { solver.step(); });

  std::printf("# probed on a %zu^3 Sedov grid\n[run]\n", grid);
  std::printf("steps = 1000\nsim_time_per_step = %.6g s\nthreshold = 5 %%\n", sim_step);
  std::printf("threshold_kind = fraction\nbandwidth = %.6g\noutput_policy = every_analysis\n",
              write_bw);

  analysis::ProbeOptions options;
  options.write_bw = write_bw;
  analysis::VorticityAnalysis vort("vorticity (F1)", solver);
  emit(analysis::probe_analysis(vort, options));
  analysis::ErrorNormAnalysis l1("L1 error norm (F2)", solver, reference,
                                 analysis::NormKind::kL1DensityPressure);
  emit(analysis::probe_analysis(l1, options));
  analysis::ErrorNormAnalysis l2("L2 error norm (F3)", solver, reference,
                                 analysis::NormKind::kL2Velocity);
  emit(analysis::probe_analysis(l2, options));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s <water|rhodopsin|sedov> [size] [write_bw]\n", argv[0]);
    return 2;
  }
  const std::string which = argv[1];
  const std::size_t size = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
  const double bw = argc > 3 ? std::strtod(argv[3], nullptr) : 1e9;
  if (which == "water") return probe_water(size ? size : 4000, bw);
  if (which == "rhodopsin") return probe_rhodopsin(size ? size : 32000, bw);
  if (which == "sedov") return probe_sedov(size ? size : 32, bw);
  std::fprintf(stderr, "unknown system '%s'\n", which.c_str());
  return 2;
}
