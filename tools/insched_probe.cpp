// insched_probe — measures the Table-1 cost parameters of the built-in
// analysis kernels on synthetic systems and emits ready-to-edit [analysis]
// config blocks for insched_plan. Closes the paper's workflow loop:
// profile (Section 4) -> model -> schedule.
//
//   insched_probe water [molecules=4000] [write_bw=1e9]
//   insched_probe rhodopsin [particles=32000] [write_bw=1e9]
//   insched_probe sedov [grid=32] [write_bw=1e9]
//
// The `solver` subcommand instead probes the MIP engine itself: it solves
// the three case-study staircase MILPs and prints the cut/probing/
// strong-branch counters alongside the basis-factorization (FactorStats)
// counters, with and without the cutting-plane engine.
//
//   insched_probe solver [steps=500] [cuts=0|1|both] [slots=20]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "insched/analysis/cost_probe.hpp"
#include "insched/casestudy/flash_sedov.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/mip/branch_and_bound.hpp"
#include "insched/scheduler/timeexp_milp.hpp"
#include "insched/analysis/density_histogram.hpp"
#include "insched/analysis/error_norms.hpp"
#include "insched/analysis/gyration.hpp"
#include "insched/analysis/msd.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/analysis/vacf.hpp"
#include "insched/analysis/vorticity.hpp"
#include "insched/sim/grid/sedov.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/sim/particles/lj_md.hpp"
#include "insched/support/string_util.hpp"

namespace {

using namespace insched;

void emit(const scheduler::AnalysisParams& p) {
  std::printf("\n[analysis]\nname = %s\n", p.name.c_str());
  if (p.ft > 1e-9) std::printf("ft = %.6g s\n", p.ft);
  if (p.it > 1e-9) std::printf("it = %.6g s\n", p.it);
  std::printf("ct = %.6g s\n", p.ct);
  if (p.ot > 1e-12) std::printf("ot = %.6g s\n", p.ot);
  if (p.fm > 0.5) std::printf("fm = %.6g\n", p.fm);
  if (p.im > 0.5) std::printf("im = %.6g\n", p.im);
  if (p.cm > 0.5) std::printf("cm = %.6g\n", p.cm);
  if (p.om > 0.5) std::printf("om = %.6g\n", p.om);
  std::printf("itv = 1   ; edit: minimum interval between analysis steps\n");
}

double measure_sim_step(const std::function<void()>& step, int rounds = 5) {
  const auto begin = std::chrono::steady_clock::now();
  for (int s = 0; s < rounds; ++s) step();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count() /
         rounds;
}

int probe_water(std::size_t molecules, double write_bw) {
  sim::WaterIonsSpec spec;
  spec.molecules = molecules;
  spec.hydronium_fraction = 0.02;
  spec.ion_fraction = 0.02;
  sim::LjSimulation md(sim::water_ions(spec), sim::MdParams{});
  md.minimize(100);
  md.thermalize(9);
  const double sim_step = measure_sim_step([&] { md.step(); });

  std::printf("# probed on a %zu-particle water+ions system\n[run]\n", md.system().size());
  std::printf("steps = 1000\nsim_time_per_step = %.6g s\nthreshold = 10 %%\n", sim_step);
  std::printf("threshold_kind = fraction\nbandwidth = %.6g\noutput_policy = every_analysis\n",
              write_bw);

  analysis::ProbeOptions options;
  options.write_bw = write_bw;

  analysis::RdfConfig a1;
  a1.pairs = {{sim::Species::kHydronium, sim::Species::kWaterO},
              {sim::Species::kHydronium, sim::Species::kHydronium},
              {sim::Species::kHydronium, sim::Species::kIon}};
  analysis::RdfAnalysis rdf1("hydronium rdf (A1)", md.system(), a1);
  emit(analysis::probe_analysis(rdf1, options));

  analysis::RdfConfig a2;
  a2.pairs = {{sim::Species::kIon, sim::Species::kWaterO},
              {sim::Species::kIon, sim::Species::kIon}};
  analysis::RdfAnalysis rdf2("ion rdf (A2)", md.system(), a2);
  emit(analysis::probe_analysis(rdf2, options));

  analysis::VacfConfig a3;
  a3.group = {sim::Species::kWaterO, sim::Species::kHydronium, sim::Species::kIon};
  analysis::VacfAnalysis vacf("vacf (A3)", md.system(), a3);
  emit(analysis::probe_analysis(vacf, options));

  analysis::MsdConfig a4;
  a4.group = {sim::Species::kHydronium, sim::Species::kIon};
  analysis::MsdAnalysis msd("msd (A4)", md.system(), a4);
  emit(analysis::probe_analysis(msd, options));
  return 0;
}

int probe_rhodopsin(std::size_t particles, double write_bw) {
  sim::RhodopsinSpec spec;
  spec.total_particles = particles;
  sim::LjSimulation md(sim::rhodopsin_like(spec), sim::MdParams{});
  md.minimize(60);
  md.thermalize(9);
  const double sim_step = measure_sim_step([&] { md.step(); });

  std::printf("# probed on a %zu-particle rhodopsin-like system\n[run]\n",
              md.system().size());
  std::printf("steps = 1000\nsim_time_per_step = %.6g s\nthreshold = 10 %%\n", sim_step);
  std::printf("threshold_kind = fraction\nbandwidth = %.6g\noutput_policy = every_analysis\n",
              write_bw);

  analysis::ProbeOptions options;
  options.write_bw = write_bw;
  analysis::GyrationAnalysis rg("radius of gyration (R1)", md.system(),
                                sim::Species::kProtein);
  emit(analysis::probe_analysis(rg, options));
  analysis::DensityHistogramConfig r2;
  r2.group = sim::Species::kMembrane;
  analysis::DensityHistogramAnalysis mem("membrane histogram (R2)", md.system(), r2);
  emit(analysis::probe_analysis(mem, options));
  analysis::DensityHistogramConfig r3;
  r3.group = sim::Species::kProtein;
  analysis::DensityHistogramAnalysis prot("protein histogram (R3)", md.system(), r3);
  emit(analysis::probe_analysis(prot, options));
  return 0;
}

int probe_sedov(std::size_t grid, double write_bw) {
  sim::EulerSolver solver(sim::GridGeometry{grid, 1.0}, sim::EulerParams{});
  sim::SedovSpec blast;
  sim::initialize_sedov(solver, blast);
  const sim::SedovReference reference(blast, solver.params().gamma);
  const double sim_step = measure_sim_step([&] { solver.step(); });

  std::printf("# probed on a %zu^3 Sedov grid\n[run]\n", grid);
  std::printf("steps = 1000\nsim_time_per_step = %.6g s\nthreshold = 5 %%\n", sim_step);
  std::printf("threshold_kind = fraction\nbandwidth = %.6g\noutput_policy = every_analysis\n",
              write_bw);

  analysis::ProbeOptions options;
  options.write_bw = write_bw;
  analysis::VorticityAnalysis vort("vorticity (F1)", solver);
  emit(analysis::probe_analysis(vort, options));
  analysis::ErrorNormAnalysis l1("L1 error norm (F2)", solver, reference,
                                 analysis::NormKind::kL1DensityPressure);
  emit(analysis::probe_analysis(l1, options));
  analysis::ErrorNormAnalysis l2("L2 error norm (F3)", solver, reference,
                                 analysis::NormKind::kL2Velocity);
  emit(analysis::probe_analysis(l2, options));
  return 0;
}

// Solves one case-study staircase MILP and prints every MipCounters field:
// tree shape, cut/probing/strong-branch activity, recovery-ladder actions,
// and the FactorStats-level FTRAN/BTRAN/eta observability of the underlying
// LU kernel. Returns 0 on a solve with an incumbent, 1 otherwise.
int solve_and_report(const char* name, const scheduler::ScheduleProblem& base, long steps,
                     bool cuts, long slots, bool own_mth, double wscale,
                     long max_nodes) {
  scheduler::ScheduleProblem p = base;
  p.steps = steps;
  if (!own_mth) p.mth = scheduler::kNoLimit;
  for (auto& a : p.analyses) {
    a.itv = std::max<long>(1, p.steps / slots);
    a.weight *= wscale;
  }
  const lp::Model model = scheduler::build_time_expanded_milp(p).model;

  mip::MipOptions opt;
  opt.threads = 1;
  if (max_nodes > 0) opt.max_nodes = max_nodes;
  if (!cuts) {
    opt.use_probing = false;
    opt.use_cover_cuts = false;
    opt.use_clique_cuts = false;
    opt.use_gomory_cuts = false;
    opt.use_mir_cuts = false;
    opt.in_tree_cuts = false;
    opt.branching = mip::Branching::kPseudoCost;
  }
  const mip::MipResult res = mip::solve_mip(model, opt);
  const mip::MipCounters& c = res.counters;

  std::printf("%-6s cuts=%d  %s  obj %.6f  %.1f ms\n", name, cuts ? 1 : 0,
              mip::to_string(res.termination), res.objective, res.solve_seconds * 1e3);
  std::printf("  tree      : nodes %ld  lp_iters %ld  rows %d  cols %d\n", res.nodes,
              res.lp_iterations, model.num_rows(), model.num_columns());
  std::printf("  cuts      : separated %ld  applied %ld (rows +%d)  aged %ld  dup %ld  "
              "restarts %ld\n",
              c.cuts_separated, c.cuts_applied, res.cuts_added, c.cuts_aged,
              c.cuts_duplicate, c.tree_restarts);
  std::printf("  probing   : probes %ld  fixed %ld  aggregated %ld  implications %ld  "
              "tightened %ld\n",
              c.probing_probes, c.probing_fixed, c.probing_aggregated,
              c.probing_implications, c.probing_tightened);
  std::printf("  branching : strong_branch_lps %ld  warm %ld  cold %ld  warm_fail %ld\n",
              c.strong_branch_lps, c.warm_solves, c.cold_solves, c.warm_failures);
  std::printf("  factor    : ftran %ld  btran %ld  refactor %ld  eta %ld  rhs_density "
              "%.4f\n",
              c.lp_ftran, c.lp_btran, c.lp_refactorizations, c.lp_eta_pivots,
              c.lp_rhs_density());
  std::printf("  recovery  : refactor %ld  repair %ld  perturb %ld  residual %ld  "
              "resolve %ld  node_retry %ld  root_retry %ld  evicted %ld\n",
              c.lp_recover_refactor, c.lp_recover_repair, c.lp_recover_perturb,
              c.lp_recover_residual, c.lp_recover_resolve, c.node_retries,
              c.root_retries, c.cuts_evicted);
  if (!res.has_solution) {
    std::fprintf(stderr, "error: %s staircase MILP solve failed (%s): no incumbent\n",
                 name, mip::to_string(res.termination));
    return 1;
  }
  return 0;
}

int probe_solver(long steps, const std::string& cuts_arg, long slots,
                 const std::string& only, bool own_mth, double wscale,
                 long max_nodes) {
  struct Case {
    const char* name;
    scheduler::ScheduleProblem problem;
  };
  const Case cases[] = {
      {"water", casestudy::water_ions_problem(16384, 0.10)},
      {"rhodo", casestudy::rhodopsin_problem(100.0)},
      {"flash", casestudy::flash_problem({2.0, 1.0, 2.0})},
  };
  int rc = 0;
  for (const Case& cs : cases) {
    if (!only.empty() && only != cs.name) continue;
    if (cuts_arg == "both" || cuts_arg == "0")
      rc |= solve_and_report(cs.name, cs.problem, steps, false, slots, own_mth, wscale,
                             max_nodes);
    if (cuts_arg == "both" || cuts_arg == "1")
      rc |= solve_and_report(cs.name, cs.problem, steps, true, slots, own_mth, wscale,
                             max_nodes);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s <water|rhodopsin|sedov> [size] [write_bw]\n", argv[0]);
    std::printf("       %s solver [steps=500] [cuts=0|1|both] [slots=20] [case] [mth|-]"
                " [wscale=1] [max_nodes]\n",
                argv[0]);
    return 2;
  }
  const std::string which = argv[1];
  if (which == "solver") {
    const long steps = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 500;
    const std::string cuts = argc > 3 ? argv[3] : "both";
    const long slots = argc > 4 ? std::strtol(argv[4], nullptr, 10) : 20;
    const std::string only = argc > 5 ? argv[5] : "";
    const bool own_mth = argc > 6 && std::strcmp(argv[6], "mth") == 0;
    const double wscale = argc > 7 ? std::strtod(argv[7], nullptr) : 1.0;
    const long max_nodes = argc > 8 ? std::strtol(argv[8], nullptr, 10) : 0;
    return probe_solver(steps, cuts, slots, only, own_mth, wscale, max_nodes);
  }
  const std::size_t size = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 0;
  const double bw = argc > 3 ? std::strtod(argv[3], nullptr) : 1e9;
  if (which == "water") return probe_water(size ? size : 4000, bw);
  if (which == "rhodopsin") return probe_rhodopsin(size ? size : 32000, bw);
  if (which == "sedov") return probe_sedov(size ? size : 32, bw);
  std::fprintf(stderr, "unknown system '%s'\n", which.c_str());
  return 2;
}
