// End-to-end in-situ run on real (laptop-scale) data: a Lennard-Jones
// water+ions system evolves under the mini-MD engine while the scheduler's
// recommended analyses (RDFs, VACF, MSD) execute in the simulation's memory
// at their optimal frequencies — the LAMMPS case study of the paper, scaled
// down to run in seconds.
//
//   $ ./lammps_waterions [molecules=800] [steps=300]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "insched/analysis/cost_probe.hpp"
#include "insched/analysis/msd.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/analysis/registry.hpp"
#include "insched/analysis/vacf.hpp"
#include "insched/perfmodel/profiler.hpp"
#include "insched/runtime/runtime.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/sim/particles/lj_md.hpp"
#include "insched/support/string_util.hpp"

int main(int argc, char** argv) {
  using namespace insched;
  const std::size_t molecules = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  const long steps = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 300;

  // --- Build and equilibrate the system -----------------------------------
  sim::WaterIonsSpec spec;
  spec.molecules = molecules;
  spec.hydronium_fraction = 0.03;
  spec.ion_fraction = 0.03;
  sim::LjSimulation md(sim::water_ions(spec), sim::MdParams{});
  md.minimize(150);
  md.thermalize(42);
  std::printf("water+ions system: %zu particles, box volume %.1f\n", md.system().size(),
              md.system().box().volume());

  // --- Register the analyses ----------------------------------------------
  analysis::AnalysisRegistry registry;
  analysis::RdfConfig a1;
  a1.pairs = {{sim::Species::kHydronium, sim::Species::kWaterO},
              {sim::Species::kHydronium, sim::Species::kHydronium},
              {sim::Species::kHydronium, sim::Species::kIon}};
  registry.add(std::make_unique<analysis::RdfAnalysis>("hydronium rdf", md.system(), a1));
  analysis::RdfConfig a2;
  a2.pairs = {{sim::Species::kIon, sim::Species::kWaterO},
              {sim::Species::kIon, sim::Species::kIon}};
  registry.add(std::make_unique<analysis::RdfAnalysis>("ion rdf", md.system(), a2));
  analysis::VacfConfig a3;
  a3.group = {sim::Species::kWaterO};
  registry.add(std::make_unique<analysis::VacfAnalysis>("vacf", md.system(), a3));
  analysis::MsdConfig a4;
  a4.group = {sim::Species::kHydronium, sim::Species::kIon};
  registry.add(std::make_unique<analysis::MsdAnalysis>("msd", md.system(), a4));

  // --- Measure each kernel's Table-1 costs with the probe -----------------
  scheduler::ScheduleProblem problem;
  problem.steps = steps;
  problem.threshold = 0.10;  // allow 10% overhead
  problem.threshold_kind = scheduler::ThresholdKind::kFractionOfSimTime;
  problem.output_policy = scheduler::OutputPolicy::kEveryAnalysis;
  problem.bw = 500e6;

  // Estimate the simulation cost per step.
  {
    const auto begin = std::chrono::steady_clock::now();
    for (int s = 0; s < 5; ++s) md.step();
    problem.sim_time_per_step =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count() / 5.0;
  }
  std::printf("measured simulation time/step: %s\n",
              format_seconds(problem.sim_time_per_step).c_str());

  for (std::size_t i = 0; i < registry.size(); ++i) {
    scheduler::AnalysisParams params = analysis::probe_analysis(registry.at(i));
    params.itv = steps / 20;  // at most 20 samples per run
    problem.analyses.push_back(params);
    std::printf("probed %-14s ct=%s it=%s om=%s\n", params.name.c_str(),
                format_seconds(params.ct).c_str(), format_seconds(params.it).c_str(),
                format_bytes(params.om).c_str());
  }

  // --- Solve for the optimal schedule and execute it ------------------------
  const scheduler::ScheduleSolution sol = scheduler::solve_schedule(problem);
  if (!sol.solved) {
    std::printf("no feasible schedule\n");
    return 1;
  }
  std::printf("\nrecommended frequencies:");
  for (std::size_t i = 0; i < problem.size(); ++i)
    std::printf(" %s x%ld", problem.analyses[i].name.c_str(), sol.frequencies[i]);
  std::printf("\n(solved in %s, %ld B&B nodes)\n\n",
              format_seconds(sol.solver_seconds).c_str(), sol.nodes);

  runtime::RuntimeConfig config;
  config.storage = machine::StorageModel{.write_bw = problem.bw, .read_bw = problem.bw,
                                         .latency_s = 0.0};
  runtime::InsituRuntime runner(md, registry, sol.schedule, config);
  const runtime::RunMetrics metrics = runner.run();
  std::printf("%s\n", metrics.to_string().c_str());
  std::printf("predicted analysis time %.3f s, measured %.3f s, budget %.3f s\n",
              sol.validation.total_analysis_time, metrics.total_analysis_seconds(),
              problem.time_budget());

  // HPM-style region report (the runtime instruments itself).
  std::printf("\n%s", perfmodel::Profiler::global().report().c_str());
  return 0;
}
