// Campaign planner: the what-if interface a science team uses before a big
// allocation — sweep the overhead threshold they are willing to pay, trade
// simulation-output frequency for analysis budget (Table 7), and compare the
// optimizer against today's hand-picked fixed frequencies. Uses the 1 G-atom
// rhodopsin case study.
//
//   $ ./campaign_planner

#include <cstdio>

#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/scheduler/greedy.hpp"
#include "insched/scheduler/recommend.hpp"
#include "insched/scheduler/validator.hpp"
#include "insched/support/string_util.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  using insched::format;
  using insched::Table;
  std::printf("Campaign planner — rhodopsin 1G atoms on 32768 Mira cores\n\n");

  // --- 1. How much analysis does a given overhead buy? ---------------------
  {
    Table table("1. overhead threshold -> in-situ analyses (R1/R2/R3 per 1000 steps)");
    table.set_header({"overhead", "budget (s)", "R1", "R2", "R3", "utilization"});
    for (double percent : {1.0, 2.0, 4.0, 6.0, 8.0}) {
      const double budget = casestudy::kRhodoSimSeconds * percent / 100.0;
      const auto sol = scheduler::solve_schedule(casestudy::rhodopsin_problem(budget));
      if (!sol.solved) continue;
      table.add_row({format("%.0f%%", percent), format("%.1f", budget),
                     format("%ld", sol.frequencies[0]), format("%ld", sol.frequencies[1]),
                     format("%ld", sol.frequencies[2]),
                     format("%.1f%%", 100.0 * sol.validation.utilization())});
    }
    table.print();
  }

  // --- 2. Trade simulation outputs for analyses (Table-7 logic) -----------
  {
    Table table("2. fewer simulation outputs -> more analyses (50 s base budget)");
    table.set_header({"sim outputs", "freed I/O (s)", "total analyses", "R1 R2 R3"});
    const auto rows = scheduler::output_tradeoff(
        casestudy::rhodopsin_problem(50.0), casestudy::kRhodoSimOutputBytes,
        casestudy::rhodopsin_write_bw(), casestudy::kRhodoDefaultOutputSteps, 50.0,
        {10, 8, 5, 3, 2});
    for (const auto& row : rows) {
      std::string freqs;
      for (std::size_t i = 0; i < row.frequencies.size(); ++i)
        freqs += format("%s%ld", i ? " " : "", row.frequencies[i]);
      table.add_row({format("%ld", row.sim_output_steps),
                     format("%.1f", 200.6 - row.output_seconds),
                     format("%ld", row.total_analyses), freqs});
    }
    table.print();
  }

  // --- 3. Marginal value of overhead (Pareto frontier) ---------------------
  {
    Table table("3. marginal value of analysis budget (Pareto frontier)");
    table.set_header({"budget (s)", "objective", "R1 R2 R3"});
    const auto frontier =
        scheduler::pareto_frontier(casestudy::rhodopsin_problem(50.0), 5.0, 400.0, 24);
    for (const auto& point : frontier) {
      std::string freqs;
      for (std::size_t i = 0; i < point.frequencies.size(); ++i)
        freqs += format("%s%ld", i ? " " : "", point.frequencies[i]);
      table.add_row({format("%.1f", point.budget_seconds), format("%.0f", point.objective),
                     freqs});
    }
    table.print();
    std::printf(
        "\nEach row is the smallest sampled budget at which the objective\n"
        "improves — the knee of this curve is where extra overhead stops\n"
        "paying for itself.\n\n");
  }

  // --- 4. Optimizer vs today's practice ------------------------------------
  {
    Table table("4. optimizer vs hand-picked fixed frequencies (100 s budget)");
    table.set_header({"method", "R1 R2 R3", "analysis time (s)", "feasible?"});
    const auto problem = casestudy::rhodopsin_problem(100.0);
    std::vector<double> weights;
    for (const auto& a : problem.analyses) weights.push_back(a.weight);

    const auto opt = scheduler::solve_schedule(problem);
    const auto report_row = [&](const char* name, const scheduler::Schedule& s) {
      const auto rep = scheduler::validate_schedule(problem, s);
      std::string freqs;
      for (long f : s.frequencies()) freqs += format("%ld ", f);
      table.add_row({name, freqs, format("%.1f", rep.total_analysis_time),
                     rep.feasible ? "yes" : "NO (over budget)"});
    };
    report_row("MILP optimal", opt.schedule);
    report_row("every 100 steps", scheduler::fixed_frequency(problem, 100));
    report_row("every 200 steps", scheduler::fixed_frequency(problem, 200));
    report_row("every 500 steps", scheduler::fixed_frequency(problem, 500));
    report_row("greedy heuristic", scheduler::greedy_schedule(problem));
    table.print();
    std::printf(
        "\n'every 100 steps' — the natural hand-picked choice — blows the\n"
        "100 s budget by ~3.4x; 'every 500' wastes most of it. The MILP and\n"
        "the greedy heuristic stay feasible; only the MILP is optimal.\n");
  }
  return 0;
}
