// Figure-3 analog: renders the rhodopsin-like synthetic system to a PPM
// image (the paper shows a VMD snapshot: protein core, membrane slab, water
// and ions). Particles are projected onto the x-z plane and depth-shaded;
// species get the figure's palette (protein purple, membrane green, water
// blue, ions orange).
//
//   $ ./snapshot_ppm [particles=60000] [out=rhodopsin.ppm]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "insched/sim/particles/builders.hpp"

namespace {

struct Rgb {
  unsigned char r, g, b;
};

Rgb species_color(insched::sim::Species s) {
  using insched::sim::Species;
  switch (s) {
    case Species::kProtein: return {140, 60, 190};    // solid purple core
    case Species::kMembrane: return {90, 190, 110};   // translucent green slab
    case Species::kIon: return {240, 150, 40};        // orange spheres
    case Species::kHydronium: return {250, 210, 90};
    default: return {90, 140, 220};                   // water blue
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace insched::sim;
  const std::size_t particles = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60000;
  const std::string out_path = argc > 2 ? argv[2] : "rhodopsin.ppm";

  RhodopsinSpec spec;
  spec.total_particles = particles;
  const ParticleSystem sys = rhodopsin_like(spec);
  const Box& box = sys.box();

  constexpr int kWidth = 640;
  constexpr int kHeight = 640;
  std::vector<Rgb> image(static_cast<std::size_t>(kWidth) * kHeight, Rgb{15, 15, 20});
  std::vector<float> depth(image.size(), -1.0f);

  // Painter's algorithm on the y (depth) axis: nearer particles overwrite,
  // with slight depth shading; protein drawn last so the core stays solid.
  const auto draw_pass = [&](bool protein_pass) {
    for (std::size_t i = 0; i < sys.size(); ++i) {
      const bool is_protein = sys.species[i] == Species::kProtein;
      if (is_protein != protein_pass) continue;
      const int px = static_cast<int>(sys.x[i] / box.lx * (kWidth - 1));
      const int pz = static_cast<int>((1.0 - sys.z[i] / box.lz) * (kHeight - 1));
      const auto d = static_cast<float>(sys.y[i] / box.ly);
      const int radius = is_protein ? 2 : 1;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          const int x = px + dx;
          const int z = pz + dy;
          if (x < 0 || x >= kWidth || z < 0 || z >= kHeight) continue;
          const std::size_t idx = static_cast<std::size_t>(z) * kWidth + x;
          if (!protein_pass && depth[idx] >= d) continue;
          depth[idx] = d;
          Rgb c = species_color(sys.species[i]);
          const float shade = 0.55f + 0.45f * d;  // nearer = brighter
          image[idx] = Rgb{static_cast<unsigned char>(c.r * shade),
                           static_cast<unsigned char>(c.g * shade),
                           static_cast<unsigned char>(c.b * shade)};
        }
      }
    }
  };
  draw_pass(false);
  draw_pass(true);

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "P6\n" << kWidth << " " << kHeight << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size() * sizeof(Rgb)));
  std::printf("wrote %s (%dx%d): protein %zu, membrane %zu, water %zu, ions %zu\n",
              out_path.c_str(), kWidth, kHeight, sys.count(Species::kProtein),
              sys.count(Species::kMembrane), sys.count(Species::kWaterO),
              sys.count(Species::kIon));
  return 0;
}
