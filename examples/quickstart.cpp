// Quickstart: describe your analyses (Table-1 parameters), ask the scheduler
// for the optimal in-situ schedule, inspect and validate it.
//
//   $ ./quickstart
//
// Walks the full public API in ~60 lines: ScheduleProblem -> recommend() ->
// Schedule -> validate_schedule() -> render().

#include <cstdio>

#include "insched/scheduler/recommend.hpp"
#include "insched/scheduler/validator.hpp"

int main() {
  using namespace insched::scheduler;

  // 1. Describe the run: 1000 simulation steps at 0.5 s each, and allow the
  //    in-situ analyses to add at most 10% on top.
  ScheduleProblem problem;
  problem.steps = 1000;
  problem.sim_time_per_step = 0.5;
  problem.threshold = 0.10;
  problem.threshold_kind = ThresholdKind::kFractionOfSimTime;
  problem.mth = 4e9;      // 4 GB of memory available for analyses
  problem.bw = 2e9;       // 2 GB/s to storage
  problem.output_policy = OutputPolicy::kEveryAnalysis;

  // 2. Describe the candidate analyses (times in seconds, memory in bytes).
  AnalysisParams histogram;
  histogram.name = "density histogram";
  histogram.ct = 0.8;      // cheap compute per analysis step
  histogram.om = 64e6;     // writes a 64 MB histogram (ot derived as om/bw)
  histogram.itv = 50;      // at most once every 50 steps
  problem.analyses.push_back(histogram);

  AnalysisParams correlation;
  correlation.name = "time correlation";
  correlation.ft = 2.0;    // one-time setup
  correlation.it = 0.004;  // copies data every simulation step
  correlation.ct = 6.0;    // expensive analysis step
  correlation.om = 1e6;
  correlation.fm = 800e6;  // pre-allocated reference buffers
  correlation.itv = 100;
  correlation.weight = 2.0;  // twice as important
  problem.analyses.push_back(correlation);

  // 3. Ask for a recommendation.
  const Recommendation rec = recommend(problem);
  if (!rec.solution.solved) {
    std::printf("no feasible schedule: tighten the analyses or raise the budget\n");
    return 1;
  }
  std::printf("%s\n", rec.summary.c_str());

  // 4. The solution carries the concrete schedule and its exact validation
  //    against the paper's constraints (Eqs 2-9).
  const ValidationReport& report = rec.solution.validation;
  std::printf("budget:     %.1f s, used %.1f s (%.1f%%)\n", report.time_budget,
              report.total_analysis_time, 100.0 * report.utilization());
  std::printf("peak memory: %.0f MB at step %ld (budget %.0f MB)\n",
              report.peak_memory / 1e6, report.peak_memory_step,
              report.memory_budget / 1e6);

  // 5. Figure-1 style timeline of the first 50 steps (S = simulation step,
  //    A = analysis, O = analysis output).
  std::printf("\ntimeline: %s\n", rec.solution.schedule.render(50).c_str());
  return 0;
}
