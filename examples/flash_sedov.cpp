// FLASH-like in-situ run: evolves a 3-D Sedov blast with the compressible
// Euler solver while the scheduled diagnostics (vorticity F1, L1 error norms
// F2, L2 velocity norms F3) run in-situ with importance weights — the FLASH
// case study of the paper, at laptop scale.
//
//   $ ./flash_sedov [grid=32] [steps=120]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "insched/analysis/cost_probe.hpp"
#include "insched/analysis/error_norms.hpp"
#include "insched/analysis/registry.hpp"
#include "insched/analysis/vorticity.hpp"
#include "insched/runtime/runtime.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/sim/grid/sedov.hpp"
#include "insched/support/string_util.hpp"

int main(int argc, char** argv) {
  using namespace insched;
  const std::size_t grid = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 32;
  const long steps = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 120;

  sim::EulerSolver solver(sim::GridGeometry{grid, 1.0}, sim::EulerParams{});
  sim::SedovSpec blast;
  sim::initialize_sedov(solver, blast);
  const sim::SedovReference reference(blast, solver.params().gamma);
  std::printf("Sedov blast on a %zu^3 grid (%zu cells), blast energy %.1f\n", grid,
              solver.geometry().cells(), blast.blast_energy);

  analysis::AnalysisRegistry registry;
  registry.add(std::make_unique<analysis::VorticityAnalysis>("vorticity", solver));
  registry.add(std::make_unique<analysis::ErrorNormAnalysis>(
      "L1 norms", solver, reference, analysis::NormKind::kL1DensityPressure));
  registry.add(std::make_unique<analysis::ErrorNormAnalysis>(
      "L2 norms", solver, reference, analysis::NormKind::kL2Velocity));

  scheduler::ScheduleProblem problem;
  problem.steps = steps;
  problem.threshold = 0.05;  // the paper's 5% scenario
  problem.threshold_kind = scheduler::ThresholdKind::kFractionOfSimTime;
  problem.output_policy = scheduler::OutputPolicy::kEveryAnalysis;
  problem.bw = 1e9;

  {
    const auto begin = std::chrono::steady_clock::now();
    for (int s = 0; s < 5; ++s) solver.step();
    problem.sim_time_per_step =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count() / 5.0;
  }

  const double weights[] = {2.0, 1.0, 2.0};  // prefer vorticity and L2 norms
  for (std::size_t i = 0; i < registry.size(); ++i) {
    scheduler::AnalysisParams params = analysis::probe_analysis(registry.at(i));
    params.itv = steps / 10;
    params.weight = weights[i];
    problem.analyses.push_back(params);
  }

  scheduler::SolveOptions options;
  options.weight_mode = scheduler::WeightMode::kLexicographic;
  const scheduler::ScheduleSolution sol = scheduler::solve_schedule(problem, options);
  if (!sol.solved) {
    std::printf("no feasible schedule\n");
    return 1;
  }
  std::printf("recommended frequencies (priority mode):");
  for (std::size_t i = 0; i < problem.size(); ++i)
    std::printf(" %s x%ld", problem.analyses[i].name.c_str(), sol.frequencies[i]);
  std::printf("\n\n");

  runtime::InsituRuntime runner(solver, registry, sol.schedule, runtime::RuntimeConfig{});
  const runtime::RunMetrics metrics = runner.run();
  std::printf("%s\n", metrics.to_string().c_str());

  // Show the physics came out: the blast's final state.
  double max_rho = 0.0;
  for (double v : solver.density().data()) max_rho = std::max(max_rho, v);
  std::printf("after %ld steps: t = %.4f, shock reference radius %.3f, max density %.2f\n",
              steps, solver.time(), reference.shock_radius(std::max(solver.time(), 1e-9)),
              max_rho);
  return 0;
}
