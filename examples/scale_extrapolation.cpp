// Section 4, realized end-to-end: measure the analysis kernels at a few
// small scales (the red circles of the paper's Figure 2), interpolate with
// the bilinear performance model, predict the Table-1 costs at a larger
// target scale that was never measured, and solve the scheduling problem
// there. Finally spot-check one prediction against a real measurement at the
// target scale.
//
//   $ ./scale_extrapolation

#include <chrono>
#include <cstdio>
#include <memory>

#include "insched/analysis/cost_probe.hpp"
#include "insched/analysis/msd.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/scheduler/cost_database.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/support/parallel.hpp"
#include "insched/support/string_util.hpp"
#include "insched/support/table.hpp"

namespace {

using namespace insched;

scheduler::AnalysisParams probe_at(std::size_t molecules, int threads,
                                   const char* which) {
  set_thread_count(threads);
  sim::WaterIonsSpec spec;
  spec.molecules = molecules;
  spec.hydronium_fraction = 0.02;
  spec.ion_fraction = 0.02;
  const sim::ParticleSystem system = sim::water_ions(spec);

  if (std::string(which) == "rdf") {
    analysis::RdfConfig config;
    config.pairs = {{sim::Species::kHydronium, sim::Species::kWaterO}};
    analysis::RdfAnalysis rdf("rdf", system, config);
    return analysis::probe_analysis(rdf);
  }
  analysis::MsdConfig config;
  config.group = {sim::Species::kHydronium, sim::Species::kIon};
  analysis::MsdAnalysis msd("msd", system, config);
  return analysis::probe_analysis(msd);
}

}  // namespace

int main() {
  using namespace insched;
  std::printf("Section-4 pipeline: probe small scales -> interpolate -> schedule big\n\n");

  // --- 1. Measure on the coarse grid (sizes x thread counts) ---------------
  scheduler::CostDatabase db;
  const std::size_t sizes[] = {500, 1000, 2000};
  const int threads[] = {1, 2, 4};
  Table measured("measured rdf ct (ms) on the probe grid");
  measured.set_header({"molecules", "1 thread", "2 threads", "4 threads"});
  for (std::size_t size : sizes) {
    std::vector<std::string> row{format("%zu", size)};
    for (int t : threads) {
      for (const char* kernel : {"rdf", "msd"}) {
        scheduler::CostSample sample;
        sample.problem_size = static_cast<double>(size);
        sample.procs = t;
        sample.costs = probe_at(size, t, kernel);
        sample.costs.itv = 10;
        if (std::string(kernel) == "rdf") row.push_back(format("%.3f", sample.costs.ct * 1e3));
        db.add_sample(kernel, sample);
      }
    }
    measured.add_row(row);
  }
  set_thread_count(0);
  measured.print();

  // --- 2. Predict at an unmeasured target scale ----------------------------
  const double target_size = 6000.0;
  const double target_threads = 8.0;
  const scheduler::AnalysisParams rdf = db.predict("rdf", target_size, target_threads);
  const scheduler::AnalysisParams msd = db.predict("msd", target_size, target_threads);
  std::printf("\npredicted at %zu molecules x %d threads: rdf ct=%s, msd ct=%s (+%s/step)\n",
              static_cast<std::size_t>(target_size), static_cast<int>(target_threads),
              format_seconds(rdf.ct).c_str(), format_seconds(msd.ct).c_str(),
              format_seconds(msd.it).c_str());

  // --- 3. Schedule at the target scale from the predictions ---------------
  scheduler::ScheduleProblem problem;
  problem.steps = 500;
  problem.threshold = 0.10;
  problem.threshold_kind = scheduler::ThresholdKind::kFractionOfSimTime;
  problem.sim_time_per_step = 8.0 * rdf.ct;  // a sim step ~8 RDFs, typical ratio
  problem.output_policy = scheduler::OutputPolicy::kEveryAnalysis;
  problem.bw = 1e9;
  problem.analyses.push_back(rdf);
  problem.analyses.push_back(msd);
  const scheduler::ScheduleSolution sol = scheduler::solve_schedule(problem);
  if (!sol.solved) {
    std::printf("no feasible schedule at the target scale\n");
    return 1;
  }
  std::printf("schedule at target scale: rdf x%ld, msd x%ld (budget %.3f s, uses %.1f%%)\n",
              sol.frequencies[0], sol.frequencies[1], problem.time_budget(),
              100.0 * sol.validation.utilization());

  // --- 4. Spot-check one prediction against reality ------------------------
  const scheduler::AnalysisParams actual = probe_at(6000, 8, "rdf");
  set_thread_count(0);
  const double error = std::fabs(rdf.ct - actual.ct) / actual.ct;
  std::printf("\nspot check at the target scale: rdf ct predicted %s, measured %s "
              "(%.1f%% error)\n",
              format_seconds(rdf.ct).c_str(), format_seconds(actual.ct).c_str(),
              100.0 * error);
  std::printf("(the paper reports <6%% for compute-time predictions; wall-clock noise\n"
              "on a shared machine can push individual probes past that)\n");
  return 0;
}
