// Moldable-job advisor (paper Section 5.3.3): a moldable job can run on any
// of several partition sizes — this example shows, for each candidate size,
// which analyses the optimizer can still afford in-situ within a 10%
// threshold, using the calibrated 100 M-atom water+ions case study.
//
//   $ ./moldable_jobs

#include <cstdio>

#include "insched/casestudy/lammps_water.hpp"
#include "insched/scheduler/recommend.hpp"
#include "insched/support/string_util.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  using insched::format;
  using insched::Table;

  std::printf("Moldable-job advisor: LAMMPS water+ions, 100M atoms, 10%% threshold\n");
  std::printf("The scheduler answers: at each size the job could be molded to,\n");
  std::printf("how often can each analysis run in-situ?\n\n");

  std::vector<scheduler::ScalePoint> scales;
  for (long cores : casestudy::water_ions_core_counts()) {
    scheduler::ScalePoint point;
    point.processes = cores;
    point.problem = casestudy::water_ions_problem(cores, 0.10);
    scales.push_back(std::move(point));
  }
  const auto rows = scheduler::strong_scaling(scales);

  Table table;
  table.set_header({"cores", "sim time (s/1000 steps)", "analysis budget (s)",
                    "A1 A2 A3 A4 frequencies", "analyses time (s)"});
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto& row = rows[k];
    double analyses_time = 0.0;
    for (double t : row.per_analysis_seconds) analyses_time += t;
    std::string freqs;
    for (std::size_t i = 0; i < row.frequencies.size(); ++i)
      freqs += format("%s%ld", i ? " " : "", row.frequencies[i]);
    table.add_row({format("%ld", row.processes),
                   format("%.0f", casestudy::water_ions_sim_time_per_step(row.processes) * 1000),
                   format("%.1f", row.budget_seconds), freqs, format("%.2f", analyses_time)});
  }
  table.print();

  std::printf(
      "\nReading the table: molding the job to more cores shrinks the wall\n"
      "clock and with it the 10%% analysis budget; the scalable RDFs stay at\n"
      "full frequency while the non-scaling MSD falls off — exactly the\n"
      "paper's Figure-5 story. A scheduler can use these rows to pick the\n"
      "partition size that still meets the science team's analysis needs.\n");
  return 0;
}
