// Computational steering demo — the paper's closing vision: "in-situ
// analyses periodically outputting results would allow researchers to check
// behavior of a running simulation and potentially interact with it in real
// time."
//
// A Sedov blast runs under the Euler solver with the scheduled L1 error-norm
// diagnostic (F2). A steering monitor watches each in-situ result: while the
// solution still deviates strongly from the self-similar reference it keeps
// the analysis frequency high; once the relative change of the norm drops
// below a plateau threshold it re-solves the scheduling problem with a
// smaller budget (fewer checks needed) — and if the solution ever diverges,
// it stops the run early.
//
//   $ ./steering [grid=28] [steps=160]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "insched/analysis/error_norms.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/sim/grid/sedov.hpp"
#include "insched/support/string_util.hpp"

int main(int argc, char** argv) {
  using namespace insched;
  const std::size_t grid = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 28;
  const long steps = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 160;

  sim::EulerSolver solver(sim::GridGeometry{grid, 1.0}, sim::EulerParams{});
  sim::SedovSpec blast;
  sim::initialize_sedov(solver, blast);
  const sim::SedovReference reference(blast, solver.params().gamma);
  analysis::ErrorNormAnalysis norm("L1", solver, reference,
                                   analysis::NormKind::kL1DensityPressure);

  // Phase 1 schedule: frequent checks (10% budget) while the blast forms.
  scheduler::ScheduleProblem problem;
  problem.steps = steps;
  problem.threshold = 0.10;
  problem.threshold_kind = scheduler::ThresholdKind::kFractionOfSimTime;
  problem.output_policy = scheduler::OutputPolicy::kNone;
  {
    const auto begin = std::chrono::steady_clock::now();
    for (int s = 0; s < 4; ++s) solver.step();
    problem.sim_time_per_step =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count() / 4.0;
  }
  scheduler::AnalysisParams params;
  params.name = "L1";
  params.ct = problem.sim_time_per_step * 0.8;  // norm costs ~0.8 sim steps
  params.itv = std::max<long>(2, steps / 40);
  problem.analyses.push_back(params);

  scheduler::ScheduleSolution plan = scheduler::solve_schedule(problem);
  if (!plan.solved) {
    std::printf("no feasible monitoring schedule\n");
    return 1;
  }
  std::printf("steering run: %zu^3 grid, %ld steps; initial monitor frequency x%ld\n",
              grid, steps, plan.frequencies[0]);

  double previous_norm = -1.0;
  bool relaxed = false;
  long checks = 0;
  std::size_t cursor = 0;
  for (long step = solver.current_step() + 1; step <= steps; ++step) {
    solver.step();
    const auto& monitor_steps = plan.schedule.analysis(0).analysis_steps;
    const bool check_now = cursor < monitor_steps.size() && monitor_steps[cursor] <= step;
    if (!check_now) continue;
    ++cursor;
    ++checks;

    const analysis::AnalysisResult result = norm.analyze();
    const double l1 = result.values[0];
    const double change =
        previous_norm > 0.0 ? std::fabs(l1 - previous_norm) / previous_norm : 1.0;
    std::printf("  step %4ld: L1(rho) = %.4f (change %.1f%%)\n", step, l1, 100.0 * change);

    if (l1 > 5.0) {  // diverged: stop the campaign early
      std::printf("steering: solution diverged, stopping the run at step %ld\n", step);
      return 1;
    }
    if (!relaxed && previous_norm > 0.0 && change < 0.08) {
      // Plateau: re-solve with a quarter of the budget for the remainder.
      relaxed = true;
      scheduler::ScheduleProblem rest = problem;
      rest.steps = steps - step;
      if (rest.steps > rest.analyses[0].itv) {
        rest.threshold = 0.025;
        const scheduler::ScheduleSolution replan = scheduler::solve_schedule(rest);
        if (replan.solved && replan.frequencies[0] > 0) {
          std::printf(
              "steering: norm plateaued -> re-scheduled monitor to x%ld for the "
              "remaining %ld steps\n",
              replan.frequencies[0], rest.steps);
          // Shift the re-planned steps to absolute positions.
          scheduler::AnalysisSchedule shifted = replan.schedule.analysis(0);
          for (long& s : shifted.analysis_steps) s += step;
          plan.schedule = scheduler::Schedule(steps, {shifted});
          cursor = 0;
        }
      }
    }
    previous_norm = l1;
  }
  std::printf("run complete: t = %.4f, %ld in-situ checks, final L1 = %.4f\n",
              solver.time(), checks, previous_norm);
  return 0;
}
