// Extension study (the paper's future work, Section 6): hybrid in-situ /
// in-transit scheduling. Sweeps the network bandwidth between the simulation
// and the staging nodes and reports, per bandwidth, which mode the optimizer
// assigns to each FLASH-like analysis and the total analyses achieved —
// exposing the transfer-vs-compute crossover the paper's introduction
// describes ("it is faster in some cases to analyze in-situ than to
// transfer the simulation output ... to remote memory").

#include <cstdio>

#include "bench_util.hpp"
#include "insched/machine/energy.hpp"
#include "insched/runtime/hybrid_exec.hpp"
#include "insched/scheduler/coanalysis.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/support/table.hpp"
#include "insched/support/units.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Extension — hybrid in-situ / in-transit scheduling (paper future work)\n"
      "FLASH-like analyses, 5% sim-side budget (43.5 s / 1000 steps), 128\n"
      "staging nodes; network bandwidth sweep");

  const auto make_problem = [&](double net_bw) {
    scheduler::CoanalysisProblem p;
    p.base.steps = 1000;
    p.base.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
    p.base.threshold = 43.5;
    p.base.output_policy = scheduler::OutputPolicy::kEveryAnalysis;
    p.network_bw = net_bw;
    p.stage_capacity_seconds = 870.0;  // staging must keep pace with the run
    p.stage_memory = 128.0 * 16.0 * GiB * 0.5;

    const auto add = [&](const char* name, double ct, double bytes, double stage_ct,
                         double stage_mem) {
      scheduler::AnalysisParams a;
      a.name = name;
      a.ct = ct;
      a.ot = 0.0;
      a.itv = 100;
      p.base.analyses.push_back(a);
      p.remote.push_back(scheduler::StagingParams{bytes, stage_ct, stage_mem});
    };
    // (in-situ seconds/step, bytes shipped/step, staging seconds, resident)
    add("vorticity (F1)", 8.15, 40e9, 60.0, 48.0 * GiB);   // needs the full mesh
    add("L1 norms (F2)", 3.5, 8e9, 25.0, 10.0 * GiB);      // density+pressure only
    add("L2 norms (F3)", 0.03, 12e9, 30.0, 14.0 * GiB);    // three velocity fields
    return p;
  };

  Table table;
  table.set_header({"network", "F1 mode xfreq", "F2 mode xfreq", "F3 mode xfreq",
                    "total analyses", "sim-side (s)", "staging (s)", "shipped"});
  for (double gbps : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    const scheduler::CoanalysisProblem p = make_problem(gbps * GB);
    const scheduler::CoanalysisSolution sol = scheduler::solve_coanalysis(p);
    if (!sol.solved) {
      std::printf("solver failed at %.0f GB/s\n", gbps);
      return 1;
    }
    std::vector<std::string> cells{format("%.0f GB/s", gbps)};
    for (std::size_t i = 0; i < p.base.size(); ++i)
      cells.push_back(format("%s x%ld", to_string(sol.modes[i]), sol.frequencies[i]));
    cells.push_back(format("%ld", bench::total_of(sol.frequencies)));
    cells.push_back(format("%.1f", sol.sim_side_seconds));
    cells.push_back(format("%.1f", sol.staging_seconds));
    cells.push_back(format_bytes(sol.network_bytes));
    table.add_row(cells);
  }
  table.print();

  // Lane timing + energy of the hybrid plan at 16 GB/s vs in-situ-only.
  {
    const scheduler::CoanalysisProblem p = make_problem(16.0 * GB);
    const scheduler::CoanalysisSolution hybrid = scheduler::solve_coanalysis(p);
    const runtime::HybridRunReport lanes = runtime::hybrid_execute(p, hybrid);
    machine::EnergyModel energy(machine::EnergyParams{});
    const double sim_nodes = 1024, staging_nodes = 128;
    const auto hybrid_energy = energy.run_energy(
        static_cast<std::int64_t>(sim_nodes), lanes.sim_lane_seconds,
        static_cast<std::int64_t>(staging_nodes), lanes.staging_busy_seconds,
        lanes.staging_idle_seconds, lanes.network_bytes, 0.0);

    const scheduler::ScheduleSolution insitu = scheduler::solve_schedule(p.base);
    const double insitu_wall = p.base.sim_time_per_step * p.base.steps +
                               insitu.validation.total_analysis_time;
    const auto insitu_energy = energy.run_energy(
        static_cast<std::int64_t>(sim_nodes), insitu_wall, 0, 0.0, 0.0, 0.0, 0.0);

    std::printf("\nlane timing at 16 GB/s: sim lane %.1f s, staging drains at %.1f s "
                "(peak backlog %.1f s)%s\n",
                lanes.sim_lane_seconds, lanes.staging_lane_seconds,
                lanes.peak_staging_backlog_seconds,
                lanes.staging_is_critical_path ? " — staging is the critical path" : "");
    std::printf("energy: hybrid %.1f MJ (incl. %.0f kJ idle staging + %.1f J network) vs "
                "in-situ-only %.1f MJ — more analyses for ~%.0f%% more energy\n",
                hybrid_energy.total() / 1e6,
                energy.node_energy(static_cast<std::int64_t>(staging_nodes), 0.0,
                                   lanes.staging_idle_seconds) / 1e3,
                hybrid_energy.network_joules, insitu_energy.total() / 1e6,
                100.0 * (hybrid_energy.total() / insitu_energy.total() - 1.0));
  }

  // In-situ-only reference.
  {
    const scheduler::CoanalysisProblem p = make_problem(1.0);
    const scheduler::ScheduleSolution insitu = scheduler::solve_schedule(p.base);
    long total = 0;
    for (long f : insitu.frequencies) total += f;
    std::printf("\nin-situ only reference: %s -> %ld total analyses\n",
                bench::freq_list(insitu.frequencies).c_str(), total);
  }
  std::printf(
      "\nReading the table: on a slow network everything stays in-situ (the\n"
      "paper's observation); as bandwidth grows, compute-heavy analyses\n"
      "migrate to staging and the freed sim-side budget buys more analyses.\n");
  return 0;
}
