// Table 8 reproduction: effect of analysis importance weights on the FLASH
// Sedov schedule (F1 vorticity, F2 L1 norms, F3 L2 norms; 5% threshold of an
// 870 s simulation). Runs both readings of the weights:
//  - weighted sum (Eq 1 verbatim),
//  - lexicographic strict priority (reproduces the paper's I2 row; see
//    EXPERIMENTS.md for why Eq 1 alone cannot).

#include <cstdio>

#include "bench_util.hpp"
#include "insched/casestudy/flash_sedov.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Table 8 — analysis importance, FLASH Sedov, 16384 cores\n"
      "paper: F1/F2/F3 compute 3.5 / 1.25 / 0.0023 s per step; sim 0.87 s/step;\n"
      "threshold 5% (43.5 s per 1000 steps)");

  struct Scenario {
    const char* name;
    std::array<double, 3> weights;
    long paper[3];
  };
  const Scenario scenarios[] = {
      {"I1 = (1,1,1)", {1.0, 1.0, 1.0}, {1, 10, 10}},
      {"I2 = (2,1,2)", {2.0, 1.0, 2.0}, {5, 0, 10}},
  };

  Table table;
  table.set_header({"importance", "F1 F2 F3 (paper)", "weighted-sum (Eq 1)",
                    "lexicographic priority"});
  for (const Scenario& s : scenarios) {
    const scheduler::ScheduleProblem problem = casestudy::flash_problem(s.weights);

    const scheduler::ScheduleSolution weighted = scheduler::solve_schedule(problem);
    scheduler::SolveOptions lex_options;
    lex_options.weight_mode = scheduler::WeightMode::kLexicographic;
    const scheduler::ScheduleSolution lex = scheduler::solve_schedule(problem, lex_options);
    if (!weighted.solved || !lex.solved) {
      std::printf("solver failed for %s\n", s.name);
      return 1;
    }
    table.add_row({s.name, format("%ld %ld %ld", s.paper[0], s.paper[1], s.paper[2]),
                   bench::freq_list(weighted.frequencies),
                   bench::freq_list(lex.frequencies)});
  }
  table.print();
  std::printf(
      "\nUnder the Eq-1 weighted sum, (1,10,10) dominates (5,0,10) for ANY\n"
      "cost vector whenever both are feasible (obj 35 vs 32 with I2 weights),\n"
      "so the paper's I2 row implies a strict-priority treatment of weights.\n"
      "Our lexicographic mode reproduces it exactly.\n");
  return 0;
}
