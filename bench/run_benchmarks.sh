#!/usr/bin/env bash
# Runs the solver benchmark suite and writes BENCH_solver.json at the repo
# root (google-benchmark JSON format). Pass a previously saved JSON file as
# an argument to embed it as a "baseline" section for before/after
# comparison:
#
#   bench/run_benchmarks.sh                # fresh run, no baseline
#   bench/run_benchmarks.sh old.json       # fresh run + baseline embedded
#   bench/run_benchmarks.sh --quick        # smoke run -> bench/out/, fast
#
# --quick is the CI/ctest smoke mode: one repetition with a tiny min-time
# over the BM_schedule_*_config single-thread rows plus both cuts arms of
# the BM_schedule_*_staircase_config MIPs, written to
# bench/out/BENCH_quick.json so the checked-in BENCH_solver.json is never
# overwritten by a smoke run.
#
# The interesting comparisons: BM_schedule_*_config speedups plus the
# factor_peak_bytes / factor_dense_equiv_bytes counters (sparse-LU PR), and
# the `nodes` / `objective` counters of the staircase rows at cuts:0 vs
# cuts:1 (cutting-plane PR — the >=2x node-reduction gate).
#
# The staircase rows also record the recovery-ladder counters (`recoveries`,
# `lp_recover_*`, `node_retries`, `root_retries` — docs/ROBUSTNESS.md) into
# the JSON: all zero on a healthy build, so a nonzero value in a fresh
# BENCH_solver.json means the solver is silently fighting numerical trouble.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
out="${OUT:-$repo_root/BENCH_solver.json}"

quick=0
baseline=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    *) baseline="$arg" ;;
  esac
done

min_time="${BENCH_MIN_TIME:-0.2}"
filter="${BENCH_FILTER:-.}"
if [[ "$quick" == 1 ]]; then
  mkdir -p "$repo_root/bench/out"
  out="${OUT:-$repo_root/bench/out/BENCH_quick.json}"
  min_time="${BENCH_MIN_TIME:-0.01}"
  filter="${BENCH_FILTER:-BM_schedule_(water|rhodo|flash)_config/threads:1/warm:1|BM_schedule_(water|rhodo|flash)_staircase_config}"
fi

if [[ ! -x "$build_dir/bench/solver_perf" ]]; then
  echo "building solver_perf in $build_dir ..." >&2
  if [[ "$quick" == 1 ]]; then
    # The smoke mode doubles as a warnings gate: the benchmark harness (and
    # any stale parts of the tree it drags in) must build warning-free.
    cmake -B "$build_dir" -S "$repo_root" -DINSCHED_WERROR=ON >/dev/null
  else
    cmake -B "$build_dir" -S "$repo_root" >/dev/null
  fi
  cmake --build "$build_dir" --target solver_perf -j >/dev/null
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

"$build_dir/bench/solver_perf" \
  --benchmark_format=json \
  --benchmark_min_time="$min_time" \
  --benchmark_filter="$filter" \
  >"$raw"

if [[ -n "$baseline" && -f "$baseline" ]]; then
  python3 - "$raw" "$baseline" "$out" <<'EOF'
import json, sys
current = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))
current["baseline"] = baseline

def times(doc):
    return {b["name"]: b["real_time"] for b in doc.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

cur, base = times(current), times(baseline)
speedups = {}
for name in sorted(cur):
    if name in base and cur[name] > 0:
        speedups[name] = round(base[name] / cur[name], 3)
current["speedup_vs_baseline"] = speedups
json.dump(current, open(sys.argv[3], "w"), indent=1)
print(f"wrote {sys.argv[3]} with baseline + speedups", file=sys.stderr)
EOF
else
  cp "$raw" "$out"
  echo "wrote $out (no baseline given)" >&2
fi
