#!/usr/bin/env bash
# Runs the solver benchmark suite and writes BENCH_solver.json at the repo
# root (google-benchmark JSON format). Pass a previously saved JSON file as
# $1 to embed it as a "baseline" section for before/after comparison:
#
#   bench/run_benchmarks.sh                # fresh run, no baseline
#   bench/run_benchmarks.sh old.json       # fresh run + baseline embedded
#
# The interesting comparison for the warm-start PR is
# BM_schedule_*_config/threads:1/warm:0 (seed-equivalent cold serial search)
# vs BM_schedule_*_config/threads:4/warm:1.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
out="${OUT:-$repo_root/BENCH_solver.json}"
baseline="${1:-}"

if [[ ! -x "$build_dir/bench/solver_perf" ]]; then
  echo "building solver_perf in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target solver_perf -j >/dev/null
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

"$build_dir/bench/solver_perf" \
  --benchmark_format=json \
  --benchmark_min_time=${BENCH_MIN_TIME:-0.2} \
  --benchmark_filter="${BENCH_FILTER:-.}" \
  >"$raw"

if [[ -n "$baseline" && -f "$baseline" ]]; then
  python3 - "$raw" "$baseline" "$out" <<'EOF'
import json, sys
current = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))
current["baseline"] = baseline

def times(doc):
    return {b["name"]: b["real_time"] for b in doc.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

cur, base = times(current), times(baseline)
speedups = {}
for name in sorted(cur):
    if name in base and cur[name] > 0:
        speedups[name] = round(base[name] / cur[name], 3)
current["speedup_vs_baseline"] = speedups
json.dump(current, open(sys.argv[3], "w"), indent=1)
print(f"wrote {sys.argv[3]} with baseline + speedups", file=sys.stderr)
EOF
else
  cp "$raw" "$out"
  echo "wrote $out (no baseline given)" >&2
fi
