// Table 5 reproduction: threshold (as % of simulation time) vs recommended
// analysis frequencies for the 100 M-atom LAMMPS water+ions problem on
// 16384 cores. Prints the paper's rows next to ours, plus the virtual
// execution of the recommended schedule.

#include <cstdio>

#include "bench_util.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/runtime/virtual_exec.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Table 5 — threshold sweep, LAMMPS water+ions, 100M atoms, 16384 cores\n"
      "paper: simulation 646.78 s / 1000 steps; itv = 100; equal weights");

  struct PaperRow {
    double fraction;
    long a[4];
    double analyses_time;
    double within;
  };
  const PaperRow paper[] = {
      {0.20, {10, 10, 10, 4}, 103.47, 80.0},
      {0.10, {10, 10, 10, 2}, 52.79, 81.6},
      {0.05, {10, 10, 10, 1}, 27.45, 84.87},
      {0.01, {10, 10, 10, 0}, 2.11, 32.66},
  };

  Table table;
  table.set_header({"threshold", "budget (s)", "A1 A2 A3 A4 (paper)", "A1 A2 A3 A4 (ours)",
                    "time paper (s)", "time ours (s)", "% paper", "% ours"});

  for (const PaperRow& row : paper) {
    const scheduler::ScheduleProblem problem =
        casestudy::water_ions_problem(16384, row.fraction, true,
                                      casestudy::kWaterIonsTable5SimTime);
    const scheduler::ScheduleSolution sol = scheduler::solve_schedule(problem);
    if (!sol.solved) {
      std::printf("solver failed at threshold %.2f\n", row.fraction);
      return 1;
    }
    // Replay the recommended schedule through the virtual executor (this is
    // "running the simulation with the recommended frequencies").
    runtime::VirtualExecConfig exec;
    exec.sim_time_per_step = problem.sim_time_per_step;
    const runtime::VirtualRunReport run =
        runtime::virtual_execute(problem, sol.schedule, exec);
    const double visible = run.metrics.visible_analysis_seconds();
    const double budget = problem.time_budget();

    table.add_row({format("%.0f%%", row.fraction * 100), format("%.2f", budget),
                   format("%ld %ld %ld %ld", row.a[0], row.a[1], row.a[2], row.a[3]),
                   bench::freq_list(sol.frequencies), format("%.2f", row.analyses_time),
                   format("%.2f", visible), format("%.2f", row.within),
                   format("%.2f", 100.0 * visible / budget)});
  }
  table.print();
  std::printf("\nschedule for the 10%% row (first 210 steps): analyses land every ~100 steps\n");
  const scheduler::ScheduleSolution sol =
      scheduler::solve_schedule(casestudy::water_ions_problem(
          16384, 0.10, true, casestudy::kWaterIonsTable5SimTime));
  std::printf("%s\n", sol.schedule.render(210).c_str());
  return 0;
}
