// Figure 4 reproduction: relative execution-time and memory profiles of the
// in-situ analyses. Two views:
//  1. the calibrated paper-scale cost database (what the figure sketches),
//  2. the real kernels measured with the cost probe on laptop-scale
//     synthetic systems (A1-A4 on water+ions, R1-R3 on rhodopsin-like,
//     F1-F3 on a Sedov grid).

#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "insched/analysis/cost_probe.hpp"
#include "insched/analysis/density_histogram.hpp"
#include "insched/analysis/error_norms.hpp"
#include "insched/analysis/gyration.hpp"
#include "insched/analysis/msd.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/analysis/vacf.hpp"
#include "insched/analysis/vorticity.hpp"
#include "insched/casestudy/flash_sedov.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/sim/grid/sedov.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Figure 4 — relative time/memory profiles of the in-situ analyses\n"
      "paper (qualitative): A4 high time+memory; A1-A3 low; R2/R3 mid-time;\n"
      "F1 high memory/compute; F2/F3 cheap");

  // --- Calibrated paper-scale database -------------------------------------
  {
    Table table("paper-scale cost database (per analysis step)");
    table.set_header({"analysis", "time (s)", "memory (MB)"});
    const auto dump = [&](const scheduler::ScheduleProblem& p) {
      for (const auto& a : p.analyses) {
        table.add_row({a.name, format("%.4f", a.ct + a.output_time(p.bw)),
                       format("%.1f", (a.fm + a.cm + a.om) / 1e6)});
      }
    };
    dump(casestudy::water_ions_problem(16384, 0.10));
    dump(casestudy::rhodopsin_problem(100.0));
    dump(casestudy::flash_problem({1, 1, 1}));
    table.print();
  }

  // --- Measured kernels at laptop scale ------------------------------------
  {
    Table table("measured kernels (cost probe, laptop-scale synthetic data)");
    table.set_header({"analysis", "ct (ms)", "it (us)", "ft (ms)", "fm+cm (KB)", "om (KB)"});
    const auto probe_and_row = [&](analysis::IAnalysis& a) {
      const scheduler::AnalysisParams p = analysis::probe_analysis(a);
      table.add_row({p.name, format("%.3f", p.ct * 1e3), format("%.1f", p.it * 1e6),
                     format("%.3f", p.ft * 1e3), format("%.1f", (p.fm + p.cm) / 1e3),
                     format("%.1f", p.om / 1e3)});
    };

    sim::WaterIonsSpec wspec;
    wspec.molecules = 3000;
    wspec.hydronium_fraction = 0.02;
    wspec.ion_fraction = 0.02;
    const sim::ParticleSystem water = sim::water_ions(wspec);
    analysis::RdfConfig a1;
    a1.pairs = {{sim::Species::kHydronium, sim::Species::kWaterO},
                {sim::Species::kHydronium, sim::Species::kHydronium},
                {sim::Species::kHydronium, sim::Species::kIon}};
    analysis::RdfAnalysis rdf1("hydronium rdf (A1)", water, a1);
    probe_and_row(rdf1);
    analysis::RdfConfig a2;
    a2.pairs = {{sim::Species::kIon, sim::Species::kWaterO},
                {sim::Species::kIon, sim::Species::kIon}};
    analysis::RdfAnalysis rdf2("ion rdf (A2)", water, a2);
    probe_and_row(rdf2);
    analysis::VacfConfig a3;
    a3.group = {sim::Species::kWaterO, sim::Species::kHydronium, sim::Species::kIon};
    analysis::VacfAnalysis vacf("vacf (A3)", water, a3);
    probe_and_row(vacf);
    analysis::MsdConfig a4;
    a4.group = {sim::Species::kHydronium, sim::Species::kIon};
    analysis::MsdAnalysis msd("msd (A4)", water, a4);
    probe_and_row(msd);

    sim::RhodopsinSpec rspec;
    rspec.total_particles = 30000;
    const sim::ParticleSystem rhodo = sim::rhodopsin_like(rspec);
    analysis::GyrationAnalysis rg("radius of gyration (R1)", rhodo, sim::Species::kProtein);
    probe_and_row(rg);
    analysis::DensityHistogramConfig r2;
    r2.group = sim::Species::kMembrane;
    analysis::DensityHistogramAnalysis mem("membrane histogram (R2)", rhodo, r2);
    probe_and_row(mem);
    analysis::DensityHistogramConfig r3;
    r3.group = sim::Species::kProtein;
    analysis::DensityHistogramAnalysis prot("protein histogram (R3)", rhodo, r3);
    probe_and_row(prot);

    sim::EulerSolver solver(sim::GridGeometry{32, 1.0}, sim::EulerParams{});
    sim::SedovSpec sedov_spec;
    sim::initialize_sedov(solver, sedov_spec);
    for (int s = 0; s < 10; ++s) solver.step();
    const sim::SedovReference ref(sedov_spec, solver.params().gamma);
    analysis::VorticityAnalysis vort("vorticity (F1)", solver);
    probe_and_row(vort);
    analysis::ErrorNormAnalysis l1("L1 error norm (F2)", solver, ref,
                                   analysis::NormKind::kL1DensityPressure);
    probe_and_row(l1);
    analysis::ErrorNormAnalysis l2("L2 error norm (F3)", solver, ref,
                                   analysis::NormKind::kL2Velocity);
    probe_and_row(l2);
    table.print();
  }
  return 0;
}
