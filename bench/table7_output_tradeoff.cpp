// Table 7 reproduction: trading simulation-output frequency for in-situ
// analysis budget (rhodopsin, 91 GB per output step). Halving the output
// frequency frees its I/O time, which the scheduler converts into more
// analyses.

#include <cstdio>

#include "bench_util.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/scheduler/recommend.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Table 7 — simulation-output time vs number of in-situ analyses\n"
      "paper: 91 GB per output step; 10 outputs cost 200.6 s (eff. 4.54 GB/s);\n"
      "the saved output time is added to a 50 s base analysis budget");

  struct PaperRow {
    double output_seconds;
    double threshold;
    long analyses;
  };
  const PaperRow paper[] = {{200.6, 50.0, 12}, {100.3, 150.3, 18}, {50.1, 200.5, 21}};

  // Whole output steps closest to the paper's halvings: 10, 5, 3 (the
  // paper's last row implies a fractional 2.5 output steps).
  const scheduler::ScheduleProblem problem = casestudy::rhodopsin_problem(50.0);
  const auto rows = scheduler::output_tradeoff(
      problem, casestudy::kRhodoSimOutputBytes, casestudy::rhodopsin_write_bw(),
      casestudy::kRhodoDefaultOutputSteps, 50.0, {10, 5, 3});

  Table table;
  table.set_header({"sim outputs", "output time paper (s)", "output time ours (s)",
                    "threshold paper (s)", "threshold ours (s)", "analyses paper",
                    "analyses ours", "R1 R2 R3 (ours)"});
  for (std::size_t k = 0; k < rows.size(); ++k) {
    table.add_row({format("%ld", rows[k].sim_output_steps),
                   format("%.1f", paper[k].output_seconds),
                   format("%.1f", rows[k].output_seconds),
                   format("%.1f", paper[k].threshold),
                   format("%.1f", rows[k].threshold_seconds),
                   format("%ld", paper[k].analyses), format("%ld", rows[k].total_analyses),
                   bench::freq_list(rows[k].frequencies)});
  }
  table.print();
  return 0;
}
