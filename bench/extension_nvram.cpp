// Extension study (paper Section 5.3.5): "Decrease in output time is also
// possible by using a higher bandwidth storage like NVRAM. Thus, by
// selecting a different resource for storing output, one can perform more
// number of in-situ analyses in the same time."
//
// Re-runs the Table-7 trade-off across storage tiers: GPFS (the measured
// 4.54 GB/s effective), a burst buffer, and node-local NVRAM. Both the
// simulation's own output time (which frees threshold budget) and the
// analyses' output times (om / bw) shrink with faster storage.

#include <cstdio>

#include "bench_util.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/scheduler/recommend.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/support/table.hpp"
#include "insched/support/units.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Extension — storage tiers for in-situ output (paper Section 5.3.5)\n"
      "rhodopsin 1G atoms: 91 GB sim output every 100 steps, 50 s base\n"
      "analysis budget; faster storage frees budget for more analyses");

  struct Tier {
    const char* name;
    double bw;
  };
  const Tier tiers[] = {
      {"GPFS (measured eff.)", casestudy::rhodopsin_write_bw()},
      {"burst buffer", 40.0 * GB},
      {"node-local NVRAM", 400.0 * GB},
  };

  Table table;
  table.set_header({"storage tier", "bandwidth", "sim output (s)", "threshold (s)",
                    "R1 R2 R3", "total analyses"});
  for (const Tier& tier : tiers) {
    // Simulation output time at this tier (10 outputs of 91 GB).
    const double sim_output_seconds =
        casestudy::kRhodoSimOutputBytes * 10.0 / tier.bw;
    // Budget: 50 s base + whatever the faster tier saves vs GPFS.
    const double gpfs_output_seconds =
        casestudy::kRhodoSimOutputBytes * 10.0 / casestudy::rhodopsin_write_bw();
    const double budget = 50.0 + (gpfs_output_seconds - sim_output_seconds);

    scheduler::ScheduleProblem problem = casestudy::rhodopsin_problem(budget);
    problem.bw = tier.bw;  // analyses' own outputs also get faster
    const scheduler::ScheduleSolution sol = scheduler::solve_schedule(problem);
    if (!sol.solved) {
      std::printf("solver failed on tier %s\n", tier.name);
      return 1;
    }
    table.add_row({tier.name, format_bytes(tier.bw) + "/s",
                   format("%.1f", sim_output_seconds), format("%.1f", budget),
                   bench::freq_list(sol.frequencies),
                   format("%ld", bench::total_of(sol.frequencies))});
  }
  table.print();
  std::printf(
      "\nShape: the GPFS row is Table 7's first row (12 analyses); moving the\n"
      "output stream to a burst buffer or NVRAM converts nearly all of the\n"
      "200 s of I/O into additional analyses, beyond even Table 7's best row\n"
      "(21): the histograms approach their maximum frequency of 10.\n");
  return 0;
}
