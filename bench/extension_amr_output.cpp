// Extension study: AMR-driven output sizes and their scheduling consequence.
// FLASH writes block-structured AMR checkpoints, so the output size (om, and
// with it ot = om/bw) is not a constant — it tracks the refined-block count,
// which grows as the Sedov shock shell expands. This bench evolves the blast,
// rebuilds the AMR hierarchy at intervals, and shows (1) the checkpoint size
// over time, and (2) how re-solving the scheduling problem with the current
// om changes the recommended output frequency.

#include <cstdio>

#include "bench_util.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/sim/grid/amr.hpp"
#include "insched/sim/grid/sedov.hpp"
#include "insched/support/table.hpp"
#include "insched/support/units.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Extension — AMR checkpoint size drives the schedule\n"
      "Sedov blast on a 64^3 grid, 16^3 cells/block (FLASH layout), 10 mesh\n"
      "variables; the scheduler re-plans as the shock refines more blocks");

  sim::EulerSolver solver(sim::GridGeometry{64, 1.0}, sim::EulerParams{});
  sim::initialize_sedov(solver, sim::SedovSpec{});
  sim::AmrConfig amr_config;
  amr_config.cells_per_block = 16;
  amr_config.refine_threshold = 0.08;

  // Paper-scale scheduling problem: the "checkpoint analysis" writes the AMR
  // mesh; its om is taken from the current hierarchy (scaled up to the 100x
  // larger production mesh the virtual run represents).
  const double scale_up = 1.0e3;  // laptop 64^3 -> production-size mesh
  const auto schedule_with_om = [&](double om_bytes) {
    scheduler::ScheduleProblem p;
    p.steps = 1000;
    p.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
    p.threshold = 60.0;
    p.output_policy = scheduler::OutputPolicy::kEveryAnalysis;
    p.bw = 10.0 * GB;
    scheduler::AnalysisParams checkpoint;
    checkpoint.name = "AMR checkpoint";
    checkpoint.ct = 0.5;
    checkpoint.om = om_bytes;
    checkpoint.itv = 20;
    p.analyses.push_back(checkpoint);
    scheduler::AnalysisParams stats;
    stats.name = "descriptive stats";
    stats.ct = 0.05;
    stats.om = 1e6;
    stats.itv = 10;
    p.analyses.push_back(stats);
    return scheduler::solve_schedule(p);
  };

  Table table;
  table.set_header({"sim step", "t", "refined blocks", "leaf cells", "compression",
                    "checkpoint", "scheduled: ckpt x / stats x"});
  for (int phase = 0; phase <= 5; ++phase) {
    const sim::AmrMesh mesh(solver.density(), solver.geometry(), amr_config);
    const double om = mesh.checkpoint_bytes() * scale_up;
    const auto sol = schedule_with_om(om);
    table.add_row({format("%ld", solver.current_step()), format("%.3f", solver.time()),
                   format("%zu / %zu", mesh.refined_blocks() / 8, mesh.blocks_per_axis() *
                                                                       mesh.blocks_per_axis() *
                                                                       mesh.blocks_per_axis()),
                   format("%zu", mesh.leaf_cells()), format("%.2fx", mesh.compression_ratio()),
                   format_bytes(om),
                   sol.solved ? format("%ld / %ld", sol.frequencies[0], sol.frequencies[1])
                              : "infeasible"});
    if (phase < 5) {
      for (int s = 0; s < 12; ++s) solver.step();
    }
  }
  table.print();
  std::printf(
      "\nReading the table: as the shock shell grows, more blocks refine and\n"
      "the checkpoint gets more expensive, so the optimizer dials the\n"
      "checkpoint frequency down while the cheap statistics stay frequent —\n"
      "the adaptive re-scheduling the paper's conclusion anticipates.\n");
  return 0;
}
