// Table 4 reproduction: post-processing vs in-situ MSD analysis for the
// water+ions simulation (1000 steps, trajectory every 100 steps).
//
// Two parts:
//  1. modeled at paper scale (12544 / 100352 atoms; workstation reads the
//     dump, a 16384-core Mira partition analyzes in-situ),
//  2. a real local run of the full pipeline (mini-MD writes a trajectory to
//     a temp dir; a serial reader recomputes the MSD) — the same code paths,
//     measured on this machine.

#include <cstdio>

#include "bench_util.hpp"
#include "insched/machine/machine.hpp"
#include "insched/runtime/postprocess.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Table 4 — post-processing vs in-situ MSD (water+ions, 1000 steps)\n"
      "paper: read 23.89 / 2413.11 s; post-process 1.03 / 17.85 s;\n"
      "in-situ 0.01 / 0.03 s (12544 / 100352 atoms)");

  struct PaperRow {
    std::size_t atoms;
    double read, post, insitu;
  };
  const PaperRow paper[] = {{12544, 23.89, 1.03, 0.01}, {100352, 2413.11, 17.85, 0.03}};

  Table modeled("modeled at paper scale (workstation vs Mira/1024 nodes)");
  modeled.set_header({"atoms", "read paper (s)", "read ours (s)", "post paper (s)",
                      "post ours (s)", "insitu paper (s)", "insitu ours (s)",
                      "speedup ours"});
  for (const PaperRow& row : paper) {
    runtime::ModeledPipelineSpec spec;
    spec.atoms = row.atoms;
    spec.analysis_site = machine::workstation();
    spec.simulation_site = machine::mira_partition(1024);
    // Naive-tool model: the parser re-scans the whole dump for every frame
    // it analyzes (classic quadratic post-processing behaviour). The paper's
    // large case degrades even further (2413 s for ~48 MB of data, i.e.
    // ~20 KB/s); we keep a single honest model and note the residual gap in
    // EXPERIMENTS.md.
    spec.rescans_per_frame = 4.0;
    const runtime::PostprocessComparison cmp = runtime::model(spec);
    modeled.add_row({format("%zu", row.atoms), format("%.2f", row.read),
                     format("%.2f", cmp.read_seconds), format("%.2f", row.post),
                     format("%.2f", cmp.postprocess_seconds), format("%.3f", row.insitu),
                     format("%.3f", cmp.insitu_seconds), format("%.0fx", cmp.speedup())});
  }
  modeled.print();

  Table real("real local run (mini-MD + trajectory files + serial re-read)");
  real.set_header({"atoms", "frames", "write (s)", "read (s)", "post-analyze (s)",
                   "in-situ (s)", "read+post vs in-situ"});
  for (std::size_t molecules : {400UL, 1600UL}) {
    runtime::RealPipelineSpec spec;
    spec.molecules = molecules;
    spec.steps = 200;
    spec.output_interval = 20;
    spec.analysis_interval = 20;
    const runtime::PostprocessComparison cmp = runtime::run_real(spec);
    real.add_row({format("%zu", cmp.atoms), format("%ld", cmp.frames),
                  format("%.4f", cmp.write_seconds), format("%.4f", cmp.read_seconds),
                  format("%.4f", cmp.postprocess_seconds), format("%.4f", cmp.insitu_seconds),
                  format("%.2fx", cmp.speedup())});
  }
  real.print();
  std::printf(
      "\nShape check: the post-processing pipeline pays storage reads that\n"
      "in-situ analysis avoids entirely; the gap widens with system size.\n");
  return 0;
}
