// Ablation studies for the design choices DESIGN.md calls out:
//  1. aggregate vs time-expanded formulation (same optimum, solve cost),
//  2. branching rule (most-fractional vs pseudo-cost),
//  3. root rounding heuristic on/off (node counts),
//  4. optimizer vs greedy vs fixed-frequency baselines (objective quality).

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/mip/branch_and_bound.hpp"
#include "insched/scheduler/aggregate_milp.hpp"
#include "insched/scheduler/greedy.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/scheduler/validator.hpp"
#include "insched/support/random.hpp"
#include "insched/support/table.hpp"

namespace {

using namespace insched;

scheduler::ScheduleProblem random_problem(Rng& rng, long steps) {
  scheduler::ScheduleProblem p;
  p.steps = steps;
  p.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
  const int n = static_cast<int>(rng.uniform_int(2, 4));
  double scale = 0.0;
  for (int i = 0; i < n; ++i) {
    scheduler::AnalysisParams a;
    a.name = "a" + std::to_string(i);
    a.ct = rng.uniform(0.2, 4.0);
    a.ot = rng.uniform(0.0, 1.0);
    a.ft = rng.uniform(0.0, 1.0);
    a.itv = rng.uniform_int(1, std::max<long>(1, steps / 4));
    a.weight = rng.uniform(0.5, 3.0);
    scale += a.ct + a.ot;
    p.analyses.push_back(a);
  }
  p.threshold = rng.uniform(1.0, 4.0) * scale;
  return p;
}

}  // namespace

int main() {
  using namespace insched;
  bench::banner("Ablation 1 — aggregate vs time-expanded formulation");
  {
    Table table;
    table.set_header({"steps", "objective (agg)", "objective (time-exp)", "solve agg (ms)",
                      "solve time-exp (ms)", "nodes agg", "nodes time-exp"});
    Rng rng(99);
    for (long steps : {6L, 10L, 16L, 20L}) {
      const scheduler::ScheduleProblem p = random_problem(rng, steps);
      scheduler::SolveOptions agg;
      agg.formulation = scheduler::Formulation::kAggregate;
      scheduler::SolveOptions te;
      te.formulation = scheduler::Formulation::kTimeExpanded;
      te.mip.time_limit_s = 10.0;  // the per-step program explodes quickly
      const auto sa = scheduler::solve_schedule(p, agg);
      const auto st = scheduler::solve_schedule(p, te);
      table.add_row({format("%ld", steps), format("%.2f", sa.objective),
                     format("%.2f", st.objective), format("%.2f", sa.solver_seconds * 1e3),
                     format("%.2f", st.solver_seconds * 1e3), format("%ld", sa.nodes),
                     format("%ld", st.nodes)});
    }
    table.print();
  }

  bench::banner("Ablation 2/3 — branching rule and root heuristic (paper instances)");
  {
    Table table;
    table.set_header({"instance", "rule", "heuristic", "nodes", "lp iters", "ms"});
    const auto run = [&](const char* name, const scheduler::ScheduleProblem& p,
                         mip::Branching rule, bool heur) {
      scheduler::SolveOptions opt;
      opt.mip.branching = rule;
      opt.mip.use_rounding_heuristic = heur;
      const auto sol = scheduler::solve_schedule(p, opt);
      table.add_row({name, rule == mip::Branching::kPseudoCost ? "pseudo-cost" : "most-frac",
                     heur ? "on" : "off", format("%ld", sol.nodes), "-",
                     format("%.2f", sol.solver_seconds * 1e3)});
    };
    const auto water = casestudy::water_ions_problem(16384, 0.10);
    const auto rhodo = casestudy::rhodopsin_problem(100.0);
    for (const auto rule : {mip::Branching::kPseudoCost, mip::Branching::kMostFractional})
      for (const bool heur : {true, false}) {
        run("water 10%", water, rule, heur);
        run("rhodo 100s", rhodo, rule, heur);
      }
    table.print();
  }

  bench::banner(
      "Ablation 4 — output-count expansion vs conservative memory bound\n"
      "(memory-constrained instances with the optimized output policy)");
  {
    Table table;
    table.set_header({"instance", "objective (expansion)", "objective (conservative)",
                      "binaries (exp)", "binaries (cons)"});
    Rng rng(123);
    for (int trial = 0; trial < 4; ++trial) {
      scheduler::ScheduleProblem p;
      p.steps = 200;
      p.threshold_kind = scheduler::ThresholdKind::kTotalSeconds;
      p.output_policy = scheduler::OutputPolicy::kOptimized;
      p.mth = rng.uniform(500.0, 2500.0);
      double scale = 0.0;
      const int n = 2;
      for (int i = 0; i < n; ++i) {
        scheduler::AnalysisParams a;
        a.name = "m" + std::to_string(i);
        a.ct = rng.uniform(0.5, 2.0);
        a.ot = rng.uniform(0.2, 1.0);
        a.im = rng.uniform(1.0, 10.0);
        a.cm = rng.uniform(0.0, 50.0);
        a.om = rng.uniform(0.0, 100.0);
        a.itv = rng.uniform_int(5, 20);
        scale += a.ct + a.ot;
        p.analyses.push_back(a);
      }
      p.threshold = rng.uniform(4.0, 12.0) * scale;

      const auto count_binaries = [](const lp::Model& m) {
        int binaries = 0;
        for (int j = 0; j < m.num_columns(); ++j)
          if (m.column(j).type == lp::VarType::kBinary) ++binaries;
        return binaries;
      };
      const auto built_exp = scheduler::build_aggregate_milp(p);
      scheduler::AggregateBuildOptions cons;
      cons.allow_expansion = false;
      const auto built_cons = scheduler::build_aggregate_milp(p, {}, cons);
      const auto res_exp = mip::solve_mip(built_exp.model);
      const auto res_cons = mip::solve_mip(built_cons.model);
      table.add_row({format("mth=%.0f", p.mth),
                     res_exp.has_solution ? format("%.1f", res_exp.objective) : "-",
                     res_cons.has_solution ? format("%.1f", res_cons.objective) : "-",
                     format("%d", count_binaries(built_exp.model)),
                     format("%d", count_binaries(built_cons.model))});
    }
    table.print();
    std::printf(
        "\nThe expansion spends extra binaries to know the reset gap per output\n"
        "count; the conservative bound assumes the worst and schedules less.\n");
  }

  bench::banner("Ablation 5 — optimizer vs greedy vs fixed-frequency baselines");
  {
    Table table;
    table.set_header({"instance", "method", "objective", "budget used %", "feasible"});
    const auto report = [&](const char* inst, const char* method,
                            const scheduler::ScheduleProblem& p,
                            const scheduler::Schedule& s) {
      std::vector<double> w;
      for (const auto& a : p.analyses) w.push_back(a.weight);
      const auto rep = scheduler::validate_schedule(p, s);
      table.add_row({inst, method, format("%.2f", s.objective(w)),
                     format("%.1f", 100.0 * rep.utilization()),
                     rep.feasible ? "yes" : "NO"});
    };
    const auto cases = {std::make_pair("water 10%", casestudy::water_ions_problem(16384, 0.10)),
                        std::make_pair("rhodo 100s", casestudy::rhodopsin_problem(100.0))};
    for (const auto& [name, problem] : cases) {
      const auto opt = scheduler::solve_schedule(problem);
      report(name, "MILP (optimal)", problem, opt.schedule);
      report(name, "greedy", problem, scheduler::greedy_schedule(problem));
      report(name, "fixed every 100", problem, scheduler::fixed_frequency(problem, 100));
      report(name, "fixed every 250", problem, scheduler::fixed_frequency(problem, 250));
    }
    table.print();
    std::printf(
        "\nfixed-frequency rows may be infeasible (budget exceeded) — that is\n"
        "the point: today's hand-picked frequencies either overrun the\n"
        "threshold or leave budget unused; the MILP tracks it optimally.\n");
  }
  return 0;
}
