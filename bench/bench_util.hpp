#pragma once

// Shared helpers for the experiment report benches.

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "insched/support/string_util.hpp"

namespace insched::bench {

inline void banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline std::string freq_list(const std::vector<long>& freq) {
  std::string out;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (i) out += " / ";
    out += format("%ld", freq[i]);
  }
  return out;
}

inline long total_of(const std::vector<long>& freq) {
  return std::accumulate(freq.begin(), freq.end(), 0L);
}

}  // namespace insched::bench
