// Analysis-kernel microbenchmarks (google-benchmark): RDF, MSD, VACF,
// gyration, density histograms on synthetic particle systems; vorticity and
// error norms on the Sedov grid; one MD step and one Euler step for the
// simulation substrates.

#include <benchmark/benchmark.h>

#include "insched/analysis/density_histogram.hpp"
#include "insched/analysis/error_norms.hpp"
#include "insched/analysis/gyration.hpp"
#include "insched/analysis/msd.hpp"
#include "insched/analysis/rdf.hpp"
#include "insched/analysis/vacf.hpp"
#include "insched/analysis/vorticity.hpp"
#include "insched/sim/grid/sedov.hpp"
#include "insched/sim/particles/builders.hpp"
#include "insched/sim/particles/lj_md.hpp"
#include "insched/support/parallel.hpp"

namespace {

using namespace insched;

sim::ParticleSystem make_water(std::size_t molecules) {
  sim::WaterIonsSpec spec;
  spec.molecules = molecules;
  spec.hydronium_fraction = 0.02;
  spec.ion_fraction = 0.02;
  return sim::water_ions(spec);
}

void BM_rdf(benchmark::State& state) {
  const sim::ParticleSystem sys = make_water(static_cast<std::size_t>(state.range(0)));
  analysis::RdfConfig config;
  config.pairs = {{sim::Species::kHydronium, sim::Species::kWaterO}};
  analysis::RdfAnalysis rdf("rdf", sys, config);
  rdf.setup();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rdf.analyze().values.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(sys.size()));
}
BENCHMARK(BM_rdf)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_msd_per_step(benchmark::State& state) {
  const sim::ParticleSystem sys = make_water(static_cast<std::size_t>(state.range(0)));
  analysis::MsdConfig config;
  config.group = {sim::Species::kWaterO};
  analysis::MsdAnalysis msd("msd", sys, config);
  msd.setup();
  for (auto _ : state) msd.per_step();
}
BENCHMARK(BM_msd_per_step)->Arg(4000)->Arg(16000);

void BM_msd_analyze(benchmark::State& state) {
  const sim::ParticleSystem sys = make_water(static_cast<std::size_t>(state.range(0)));
  analysis::MsdConfig config;
  config.group = {sim::Species::kWaterO};
  analysis::MsdAnalysis msd("msd", sys, config);
  msd.setup();
  for (auto _ : state) benchmark::DoNotOptimize(msd.analyze().values[0]);
}
BENCHMARK(BM_msd_analyze)->Arg(4000)->Arg(16000);

void BM_vacf(benchmark::State& state) {
  const sim::ParticleSystem sys = make_water(static_cast<std::size_t>(state.range(0)));
  analysis::VacfConfig config;
  config.group = {sim::Species::kWaterO};
  analysis::VacfAnalysis vacf("vacf", sys, config);
  vacf.setup();
  for (auto _ : state) benchmark::DoNotOptimize(vacf.analyze().values[0]);
}
BENCHMARK(BM_vacf)->Arg(16000);

void BM_gyration(benchmark::State& state) {
  sim::RhodopsinSpec spec;
  spec.total_particles = static_cast<std::size_t>(state.range(0));
  const sim::ParticleSystem sys = sim::rhodopsin_like(spec);
  analysis::GyrationAnalysis rg("rg", sys, sim::Species::kProtein);
  rg.setup();
  for (auto _ : state) benchmark::DoNotOptimize(rg.analyze().values[0]);
}
BENCHMARK(BM_gyration)->Arg(32000);

void BM_density_histogram(benchmark::State& state) {
  sim::RhodopsinSpec spec;
  spec.total_particles = static_cast<std::size_t>(state.range(0));
  const sim::ParticleSystem sys = sim::rhodopsin_like(spec);
  analysis::DensityHistogramConfig config;
  config.group = sim::Species::kMembrane;
  analysis::DensityHistogramAnalysis hist("hist", sys, config);
  hist.setup();
  for (auto _ : state) benchmark::DoNotOptimize(hist.analyze().values[0]);
}
BENCHMARK(BM_density_histogram)->Arg(32000)->Arg(128000);

void BM_vorticity(benchmark::State& state) {
  sim::EulerSolver solver(sim::GridGeometry{static_cast<std::size_t>(state.range(0)), 1.0},
                          sim::EulerParams{});
  sim::initialize_sedov(solver, sim::SedovSpec{});
  for (int s = 0; s < 5; ++s) solver.step();
  analysis::VorticityAnalysis vort("vort", solver);
  for (auto _ : state) benchmark::DoNotOptimize(vort.analyze().values[0]);
}
BENCHMARK(BM_vorticity)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_error_norms(benchmark::State& state) {
  sim::EulerSolver solver(sim::GridGeometry{static_cast<std::size_t>(state.range(0)), 1.0},
                          sim::EulerParams{});
  sim::SedovSpec spec;
  sim::initialize_sedov(solver, spec);
  for (int s = 0; s < 5; ++s) solver.step();
  const sim::SedovReference ref(spec, solver.params().gamma);
  analysis::ErrorNormAnalysis norms("l1", solver, ref,
                                    analysis::NormKind::kL1DensityPressure);
  for (auto _ : state) benchmark::DoNotOptimize(norms.analyze().values[0]);
}
BENCHMARK(BM_error_norms)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_md_step(benchmark::State& state) {
  sim::LjSimulation md(make_water(static_cast<std::size_t>(state.range(0))), sim::MdParams{});
  md.minimize(50);
  md.thermalize(3);
  for (auto _ : state) md.step();
  state.SetItemsProcessed(state.iterations() * static_cast<long>(md.system().size()));
}
BENCHMARK(BM_md_step)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_euler_step(benchmark::State& state) {
  sim::EulerSolver solver(sim::GridGeometry{static_cast<std::size_t>(state.range(0)), 1.0},
                          sim::EulerParams{});
  sim::initialize_sedov(solver, sim::SedovSpec{});
  for (auto _ : state) solver.step();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(solver.geometry().cells()));
}
BENCHMARK(BM_euler_step)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace
