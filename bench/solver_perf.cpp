// Solver microbenchmarks (google-benchmark): LP simplex, MIP branch and
// bound, and the full scheduling solve on the paper's instances. The paper
// reports CPLEX solve times of 0.17 - 1.36 s for these models; the
// insched_schedule_* timings are the comparable numbers.

#include <benchmark/benchmark.h>

#include "insched/casestudy/flash_sedov.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/lp/simplex.hpp"
#include "insched/mip/branch_and_bound.hpp"
#include "insched/scheduler/solver.hpp"
#include "insched/scheduler/timeexp_milp.hpp"
#include "insched/support/random.hpp"

namespace {

using namespace insched;

lp::Model random_lp(int vars, int rows, std::uint64_t seed) {
  Rng rng(seed);
  lp::Model m;
  m.set_sense(lp::Sense::kMaximize);
  for (int j = 0; j < vars; ++j) m.add_column("x", 0.0, rng.uniform(1.0, 10.0),
                                              rng.uniform(0.1, 5.0));
  for (int i = 0; i < rows; ++i) {
    std::vector<lp::RowEntry> entries;
    for (int j = 0; j < vars; ++j)
      if (rng.bernoulli(0.4)) entries.push_back({j, rng.uniform(0.1, 3.0)});
    if (entries.empty()) entries.push_back({0, 1.0});
    m.add_row("r", lp::RowType::kLe, rng.uniform(5.0, 40.0), std::move(entries));
  }
  return m;
}

void BM_simplex_dense(benchmark::State& state) {
  const auto vars = static_cast<int>(state.range(0));
  const lp::Model m = random_lp(vars, vars / 2, 7);
  for (auto _ : state) {
    const lp::SimplexResult res = lp::solve_lp(m);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_simplex_dense)->Arg(20)->Arg(60)->Arg(150)->Arg(300);

void BM_mip_knapsack(benchmark::State& state) {
  const auto items = static_cast<int>(state.range(0));
  Rng rng(13);
  lp::Model m;
  m.set_sense(lp::Sense::kMaximize);
  std::vector<lp::RowEntry> entries;
  for (int j = 0; j < items; ++j) {
    m.add_column("b", 0, 1, rng.uniform(1.0, 10.0), lp::VarType::kBinary);
    entries.push_back({j, rng.uniform(1.0, 8.0)});
  }
  m.add_row("cap", lp::RowType::kLe, items * 1.5, std::move(entries));
  for (auto _ : state) {
    const mip::MipResult res = mip::solve_mip(m);
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_mip_knapsack)->Arg(10)->Arg(20)->Arg(40);

void BM_schedule_water_table5(benchmark::State& state) {
  const scheduler::ScheduleProblem p = casestudy::water_ions_problem(16384, 0.10);
  for (auto _ : state) {
    const auto sol = scheduler::solve_schedule(p);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_schedule_water_table5)->Unit(benchmark::kMillisecond);

void BM_schedule_rhodo_table6(benchmark::State& state) {
  const scheduler::ScheduleProblem p = casestudy::rhodopsin_problem(100.0);
  for (auto _ : state) {
    const auto sol = scheduler::solve_schedule(p);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_schedule_rhodo_table6)->Unit(benchmark::kMillisecond);

void BM_schedule_flash_lexicographic(benchmark::State& state) {
  const scheduler::ScheduleProblem p = casestudy::flash_problem({2.0, 1.0, 2.0});
  scheduler::SolveOptions options;
  options.weight_mode = scheduler::WeightMode::kLexicographic;
  for (auto _ : state) {
    const auto sol = scheduler::solve_schedule(p, options);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_schedule_flash_lexicographic)->Unit(benchmark::kMillisecond);

// Warm-start / thread-count axes over the case-study solves: args are
// (threads, warm, deterministic). threads=1 warm=0 approximates the seed
// serial solver; threads=4 warm=1 is the configuration the PR's >=2x
// speedup target is measured on. Objectives are proved optima, so they are
// identical across all configurations.
void BM_schedule_config(benchmark::State& state, const scheduler::ScheduleProblem& p,
                        scheduler::SolveOptions options) {
  options.mip.threads = static_cast<int>(state.range(0));
  options.mip.warm_start = state.range(1) != 0;
  options.mip.deterministic = state.range(2) != 0;
  double objective = 0.0;
  mip::MipCounters counters;
  for (auto _ : state) {
    const auto sol = scheduler::solve_schedule(p, options);
    objective = sol.objective;
    counters = sol.mip_counters;
    benchmark::DoNotOptimize(sol.objective);
  }
  state.counters["objective"] = objective;
  // Basis-factorization observability of the last solve: FTRAN/BTRAN call
  // counts, right-hand-side density, eta/refactorization volume, and the
  // factor-cache footprint vs what dense inverse snapshots would have cost.
  state.counters["lp_ftran"] = static_cast<double>(counters.lp_ftran);
  state.counters["lp_btran"] = static_cast<double>(counters.lp_btran);
  state.counters["lp_refactors"] = static_cast<double>(counters.lp_refactorizations);
  state.counters["lp_eta_pivots"] = static_cast<double>(counters.lp_eta_pivots);
  state.counters["lp_rhs_density"] = counters.lp_rhs_density();
  state.counters["factor_peak_bytes"] =
      static_cast<double>(counters.factor_cache_peak_bytes);
  state.counters["factor_dense_equiv_bytes"] =
      static_cast<double>(counters.factor_cache_peak_dense_bytes);
}

void BM_schedule_water_config(benchmark::State& state) {
  BM_schedule_config(state, casestudy::water_ions_problem(16384, 0.10), {});
}
BENCHMARK(BM_schedule_water_config)
    ->ArgNames({"threads", "warm", "det"})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({2, 1, 0})
    ->Args({4, 1, 0})
    ->Args({8, 1, 0})
    ->Args({4, 1, 1})
    ->Unit(benchmark::kMillisecond);

void BM_schedule_rhodo_config(benchmark::State& state) {
  BM_schedule_config(state, casestudy::rhodopsin_problem(100.0), {});
}
BENCHMARK(BM_schedule_rhodo_config)
    ->ArgNames({"threads", "warm", "det"})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({2, 1, 0})
    ->Args({4, 1, 0})
    ->Args({8, 1, 0})
    ->Args({4, 1, 1})
    ->Unit(benchmark::kMillisecond);

void BM_schedule_flash_config(benchmark::State& state) {
  scheduler::SolveOptions options;
  options.weight_mode = scheduler::WeightMode::kLexicographic;
  BM_schedule_config(state, casestudy::flash_problem({2.0, 1.0, 2.0}), options);
}
BENCHMARK(BM_schedule_flash_config)
    ->ArgNames({"threads", "warm", "det"})
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({2, 1, 0})
    ->Args({4, 1, 0})
    ->Args({8, 1, 0})
    ->Args({4, 1, 1})
    ->Unit(benchmark::kMillisecond);

void BM_schedule_time_expanded(benchmark::State& state) {
  // Scaled-down horizon: the exact per-step program. Memory is left
  // unconstrained here — the big-M memory recurrence makes the relaxation
  // weak enough that node counts explode, which is exactly why the
  // aggregate formulation is the default (see ablation_formulations).
  scheduler::ScheduleProblem p = casestudy::water_ions_problem(16384, 0.10);
  p.steps = state.range(0);
  p.mth = scheduler::kNoLimit;
  for (auto& a : p.analyses) a.itv = std::max<long>(1, p.steps / 10);
  scheduler::SolveOptions options;
  options.formulation = scheduler::Formulation::kTimeExpanded;
  options.mip.time_limit_s = 3.0;
  for (auto _ : state) {
    const auto sol = scheduler::solve_schedule(p, options);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_schedule_time_expanded)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

// Steps-heavy time-expanded MILPs: the staircase regime the cutting-plane
// engine targets. The budget row spans hundreds of interchangeable step
// positions, so the LP bound is invariant under individual branchings and a
// plain tree only closes through an exactly-optimal incumbent — cuts are
// what move the dual bound. Args are (steps, cuts): cuts=0 is the pre-PR
// engine (pseudo-cost branch and bound, no presolve, no separation), cuts=1
// is the full default stack (probing, covers, cliques, Gomory/MIR, in-tree
// separation, reliability branching). Both arms share a node cap so the
// headline counter is `nodes` at identical `objective` values; the >=2x
// node-reduction acceptance gate for the cut engine reads exactly these two
// rows. Weights are scaled per case to open an integrality gap > 1 that
// branching alone cannot close (see docs/FORMULATION.md, "Why cuts close
// these trees"); memory is left unconstrained for the same conditioning
// reason as BM_schedule_time_expanded above.
void run_staircase_mip(benchmark::State& state, scheduler::ScheduleProblem p,
                       double weight_scale) {
  p.steps = state.range(0);
  p.mth = scheduler::kNoLimit;
  for (auto& a : p.analyses) {
    a.itv = std::max<long>(1, p.steps / 20);
    a.weight *= weight_scale;
  }
  const lp::Model model = scheduler::build_time_expanded_milp(p).model;
  mip::MipOptions opt;
  opt.threads = 1;
  opt.max_nodes = 512;
  opt.time_limit_s = 120.0;
  if (state.range(1) == 0) {
    opt.use_probing = false;
    opt.use_cover_cuts = false;
    opt.use_clique_cuts = false;
    opt.use_gomory_cuts = false;
    opt.use_mir_cuts = false;
    opt.in_tree_cuts = false;
    opt.branching = mip::Branching::kPseudoCost;
  }
  mip::MipResult res;
  for (auto _ : state) {
    res = mip::solve_mip(model, opt);
    benchmark::DoNotOptimize(res.objective);
  }
  state.counters["objective"] = res.objective;
  state.counters["best_bound"] = res.best_bound;
  state.counters["nodes"] = static_cast<double>(res.nodes);
  state.counters["proved_optimal"] = res.optimal() ? 1.0 : 0.0;
  state.counters["cuts_separated"] = static_cast<double>(res.counters.cuts_separated);
  state.counters["cuts_applied"] = static_cast<double>(res.counters.cuts_applied);
  state.counters["tree_restarts"] = static_cast<double>(res.counters.tree_restarts);
  state.counters["probing_fixed"] = static_cast<double>(res.counters.probing_fixed);
  state.counters["probing_implications"] =
      static_cast<double>(res.counters.probing_implications);
  state.counters["strong_branch_lps"] =
      static_cast<double>(res.counters.strong_branch_lps);
  // Basis-factorization observability of the staircase LU kernel, summed
  // over every node/heuristic LP of the last solve.
  state.counters["lp_ftran"] = static_cast<double>(res.counters.lp_ftran);
  state.counters["lp_btran"] = static_cast<double>(res.counters.lp_btran);
  state.counters["lp_refactors"] =
      static_cast<double>(res.counters.lp_refactorizations);
  state.counters["lp_eta_pivots"] = static_cast<double>(res.counters.lp_eta_pivots);
  state.counters["lp_rhs_density"] = res.counters.lp_rhs_density();
  // Recovery-ladder actions (docs/ROBUSTNESS.md): all zero on a healthy run,
  // so any drift here flags a numerical regression before it costs accuracy.
  state.counters["recoveries"] = static_cast<double>(res.counters.recoveries());
  state.counters["lp_recover_refactor"] =
      static_cast<double>(res.counters.lp_recover_refactor);
  state.counters["lp_recover_repair"] =
      static_cast<double>(res.counters.lp_recover_repair);
  state.counters["lp_recover_perturb"] =
      static_cast<double>(res.counters.lp_recover_perturb);
  state.counters["lp_recover_residual"] =
      static_cast<double>(res.counters.lp_recover_residual);
  state.counters["lp_recover_resolve"] =
      static_cast<double>(res.counters.lp_recover_resolve);
  state.counters["node_retries"] = static_cast<double>(res.counters.node_retries);
  state.counters["root_retries"] = static_cast<double>(res.counters.root_retries);
}

void BM_schedule_water_staircase_config(benchmark::State& state) {
  run_staircase_mip(state, casestudy::water_ions_problem(16384, 0.08), 1.0);
}
BENCHMARK(BM_schedule_water_staircase_config)
    ->ArgNames({"steps", "cuts"})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Unit(benchmark::kMillisecond);

void BM_schedule_rhodo_staircase_config(benchmark::State& state) {
  run_staircase_mip(state, casestudy::rhodopsin_problem(100.0), 3.0);
}
BENCHMARK(BM_schedule_rhodo_staircase_config)
    ->ArgNames({"steps", "cuts"})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Unit(benchmark::kMillisecond);

void BM_schedule_flash_staircase_config(benchmark::State& state) {
  run_staircase_mip(state, casestudy::flash_problem({2.0, 1.0, 2.0}, 0.08), 3.0);
}
BENCHMARK(BM_schedule_flash_staircase_config)
    ->ArgNames({"steps", "cuts"})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
