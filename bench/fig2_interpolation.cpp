// Figure 2 / Section 4 reproduction: bilinear-interpolation performance
// prediction. Builds synthetic compute/communication/memory cost surfaces
// shaped like the paper's kernels, samples them on coarse factor-2
// measurement grids, and reports prediction error on dense off-grid points.
// Paper claims: < 6% compute error, < 8% communication error.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "insched/machine/collectives.hpp"
#include "insched/machine/topology.hpp"
#include "insched/perfmodel/bilinear.hpp"
#include "insched/perfmodel/predictor.hpp"
#include "insched/support/random.hpp"
#include "insched/support/stats.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  using perfmodel::AxisScale;
  using perfmodel::BilinearInterpolator;
  using perfmodel::sample_function;

  bench::banner(
      "Figure 2 / Section 4 — bilinear interpolation prediction error\n"
      "paper: <6% compute-time error (y = process count), <8% communication\n"
      "error (y = network diameter), memory via problem size x process count");

  Rng rng(2024);
  Table table;
  table.set_header({"surface", "grid", "eval points", "mean err %", "max err %", "bound %"});

  // --- Compute-time surfaces: t = a n/p + b log2 p + c --------------------
  {
    Accumulator mean_err, max_err;
    for (int trial = 0; trial < 50; ++trial) {
      const double a = rng.uniform(1e-7, 5e-7);
      const double b = rng.uniform(1e-3, 5e-3);
      const double c = rng.uniform(0.01, 0.05);
      const auto fn = [&](double n, double p) { return a * n / p + b * std::log2(p) + c; };
      std::vector<double> ns, ps;
      for (double n = 16e6; n <= 1024e6 + 1; n *= 2.0) ns.push_back(n);
      for (double p = 2048; p <= 32768 + 1; p *= 2.0) ps.push_back(p);
      const BilinearInterpolator f(sample_function(ns, ps, fn), AxisScale::kLog,
                                   AxisScale::kLog, AxisScale::kLog);
      std::vector<double> pred, act;
      for (double n = 16e6; n <= 1024e6; n *= 1.37)
        for (double p = 2048; p <= 32768; p *= 1.29) {
          pred.push_back(f(n, p));
          act.push_back(fn(n, p));
        }
      mean_err.add(100.0 * mean_relative_error(pred, act));
      max_err.add(100.0 * max_relative_error(pred, act));
    }
    table.add_row({"compute t(n, p)", "7 sizes x 5 proc counts", "50 surfaces x ~180 pts",
                   format("%.2f", mean_err.mean()), format("%.2f", max_err.max()), "6.0"});
  }

  // --- Communication surfaces: t = alpha d + beta n^(2/3) d + gamma -------
  {
    Accumulator mean_err, max_err;
    // Use real BG/Q partition diameters as the y-variable, as the paper does.
    std::vector<double> ds;
    for (long nodes : {512L, 2048L, 8192L, 32768L})
      ds.push_back(static_cast<double>(machine::bgq_partition(nodes).diameter()));
    for (int trial = 0; trial < 50; ++trial) {
      const double alpha = rng.uniform(1e-6, 5e-6);
      const double beta = rng.uniform(1e-9, 4e-9);
      const double gamma = rng.uniform(1e-5, 1e-4);
      const auto fn = [&](double n, double d) {
        return alpha * d + beta * std::pow(n, 2.0 / 3.0) * d + gamma;
      };
      std::vector<double> ns;
      for (double n = 16e6; n <= 1024e6 + 1; n *= 2.0) ns.push_back(n);
      const BilinearInterpolator f(sample_function(ns, ds, fn), AxisScale::kLog,
                                   AxisScale::kLinear, AxisScale::kLog);
      std::vector<double> pred, act;
      for (double n = 16e6; n <= 1024e6; n *= 1.43)
        for (double d = ds.front(); d <= ds.back(); d += 1.7) {
          pred.push_back(f(n, d));
          act.push_back(fn(n, d));
        }
      mean_err.add(100.0 * mean_relative_error(pred, act));
      max_err.add(100.0 * max_relative_error(pred, act));
    }
    table.add_row({"communication t(n, diam)", "7 sizes x 4 diameters",
                   "50 surfaces x ~160 pts", format("%.2f", mean_err.mean()),
                   format("%.2f", max_err.max()), "8.0"});
  }

  // --- Allreduce surface from the torus collective model -------------------
  // Not a synthetic formula: the "truth" here is the CollectiveModel's
  // closed-form allreduce cost on real BG/Q partitions; the interpolator
  // sees only the coarse measurement grid.
  {
    const machine::NetworkParams net;
    const std::vector<long> nodes{512, 1024, 2048, 4096, 8192, 16384, 32768};
    std::vector<double> ds;
    for (long n : nodes) ds.push_back(static_cast<double>(machine::bgq_partition(n).diameter()));
    // Deduplicate equal diameters (partition shapes can tie).
    std::vector<double> uniq;
    std::vector<long> uniq_nodes;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (uniq.empty() || ds[i] > uniq.back() + 0.5) {
        uniq.push_back(ds[i]);
        uniq_nodes.push_back(nodes[i]);
      }
    }
    const auto truth = [&](double bytes, double diameter) {
      // Look up the partition with this diameter.
      for (std::size_t i = 0; i < uniq.size(); ++i) {
        if (std::fabs(uniq[i] - diameter) < 1e-9) {
          const machine::CollectiveModel model(machine::bgq_partition(uniq_nodes[i]), net);
          return model.allreduce_seconds(bytes);
        }
      }
      // Interpolated diameter: evaluate the closed form directly.
      const double latency = 2.0 * net.link_latency_s * diameter;
      const double transfer = 2.0 * bytes / net.link_bw * std::max(1.0, diameter * 0.5);
      const double combine = bytes * net.reduce_flops_per_byte / net.node_flops * diameter;
      return latency + transfer + combine;
    };
    std::vector<double> bytes_axis;
    for (double b = 1e4; b <= 1e8 + 1; b *= 4.0) bytes_axis.push_back(b);
    const BilinearInterpolator f(sample_function(bytes_axis, uniq, truth), AxisScale::kLog,
                                 AxisScale::kLinear, AxisScale::kLog);
    std::vector<double> pred, act;
    for (double b = 1e4; b <= 1e8; b *= 2.3)
      for (double d = uniq.front(); d <= uniq.back(); d += 2.0) {
        pred.push_back(f(b, d));
        act.push_back(truth(b, d));
      }
    table.add_row({"allreduce (torus model)",
                   format("%zu sizes x %zu diameters", bytes_axis.size(), uniq.size()),
                   format("%zu pts", pred.size()),
                   format("%.2f", 100.0 * mean_relative_error(pred, act)),
                   format("%.2f", 100.0 * max_relative_error(pred, act)), "8.0"});
  }

  // --- Memory surfaces: m = s n / p + overhead -----------------------------
  {
    Accumulator mean_err, max_err;
    for (int trial = 0; trial < 50; ++trial) {
      const double s = rng.uniform(24.0, 96.0);
      const double o = rng.uniform(1e6, 16e6);
      const auto fn = [&](double n, double p) { return s * n / p + o; };
      std::vector<double> ns, ps;
      for (double n = 16e6; n <= 1024e6 + 1; n *= 2.0) ns.push_back(n);
      for (double p = 2048; p <= 32768 + 1; p *= 2.0) ps.push_back(p);
      const BilinearInterpolator f(sample_function(ns, ps, fn), AxisScale::kLog,
                                   AxisScale::kLog, AxisScale::kLog);
      std::vector<double> pred, act;
      for (double n = 16e6; n <= 1024e6; n *= 1.61)
        for (double p = 2048; p <= 32768; p *= 1.37) {
          pred.push_back(f(n, p));
          act.push_back(fn(n, p));
        }
      mean_err.add(100.0 * mean_relative_error(pred, act));
      max_err.add(100.0 * max_relative_error(pred, act));
    }
    table.add_row({"memory m(n, p)", "7 sizes x 5 proc counts", "50 surfaces x ~120 pts",
                   format("%.2f", mean_err.mean()), format("%.2f", max_err.max()), "-"});
  }

  table.print();
  return 0;
}
