// Table 6 reproduction: absolute total-threshold sweep for the 1 G-atom
// rhodopsin problem on 32768 cores (R1 radius of gyration, R2 membrane
// histogram, R3 protein histogram).

#include <cstdio>

#include "bench_util.hpp"
#include "insched/casestudy/lammps_rhodo.hpp"
#include "insched/scheduler/recommend.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Table 6 — total threshold sweep, LAMMPS rhodopsin, 1G atoms, 32768 cores\n"
      "paper: simulation 5163.03 s / 1000 steps; per-analysis step+output\n"
      "times 0.003 / 17.193 / 17.194 s; itv = 100");

  struct PaperRow {
    double budget;
    long r[3];
    double within;
  };
  const PaperRow paper[] = {
      {200.0, {10, 4, 7}, 94.59},
      {100.0, {10, 2, 3}, 85.99},
      {60.0, {10, 1, 2}, 86.01},
      {20.0, {10, 1, 0}, 86.11},
      {10.0, {10, 0, 0}, 0.3},
  };

  Table table;
  table.set_header({"threshold (s)", "R1 R2 R3 (paper)", "R1 R2 R3 (ours)", "total (paper)",
                    "total (ours)", "% paper", "% ours"});
  for (const PaperRow& row : paper) {
    const scheduler::ScheduleProblem problem = casestudy::rhodopsin_problem(row.budget);
    const scheduler::ScheduleSolution sol = scheduler::solve_schedule(problem);
    if (!sol.solved) {
      std::printf("solver failed at %.0f s\n", row.budget);
      return 1;
    }
    long paper_total = row.r[0] + row.r[1] + row.r[2];
    table.add_row({format("%.0f", row.budget),
                   format("%ld %ld %ld", row.r[0], row.r[1], row.r[2]),
                   bench::freq_list(sol.frequencies), format("%ld", paper_total),
                   format("%ld", bench::total_of(sol.frequencies)),
                   format("%.2f", row.within),
                   format("%.2f", 100.0 * sol.validation.utilization())});
  }
  table.print();
  std::printf(
      "\nNote: R2 and R3 differ by 1 ms per step, so several R2/R3 splits are\n"
      "objective ties; the paper reports one optimal tie, we report another.\n"
      "The total number of analyses and the utilization match.\n");
  return 0;
}
