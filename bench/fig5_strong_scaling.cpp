// Figure 5 reproduction: strong scaling of the scheduled analyses (A1, A2,
// A4) for the 100 M-atom water+ions problem, 2048 - 32768 cores, threshold
// 10% of simulation time. Prints the stacked per-analysis times the figure
// plots, plus the recommended frequencies.

#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "insched/casestudy/lammps_water.hpp"
#include "insched/scheduler/recommend.hpp"
#include "insched/support/csv.hpp"
#include "insched/support/table.hpp"

int main() {
  using namespace insched;
  bench::banner(
      "Figure 5 — strong scaling, analyses A1/A2/A4, water+ions 100M atoms\n"
      "paper: sim time/step 4.16, 2.12, 1.08, 0.61, 0.40 s at 2Ki..32Ki cores;\n"
      "threshold 10%; A4 frequency falls 10 -> 1 while A1/A2 stay at 10");

  std::vector<scheduler::ScalePoint> scales;
  for (long cores : casestudy::water_ions_core_counts()) {
    scheduler::ScalePoint point;
    point.processes = cores;
    point.problem = casestudy::water_ions_problem(cores, 0.10, /*include_vacf=*/false);
    scales.push_back(std::move(point));
  }
  const auto rows = scheduler::strong_scaling(scales);

  Table table;
  table.set_header({"processes", "budget (s)", "freq A1 A2 A4", "t(A1) s", "t(A2) s",
                    "t(A4) s", "stacked total (s)"});
  std::filesystem::create_directories("bench/out");
  CsvWriter csv("bench/out/fig5_strong_scaling.csv");
  csv.write_row({"processes", "tA1", "tA2", "tA4"});
  for (const auto& row : rows) {
    const double total =
        row.per_analysis_seconds[0] + row.per_analysis_seconds[1] + row.per_analysis_seconds[2];
    table.add_row({format("%ld", row.processes), format("%.1f", row.budget_seconds),
                   bench::freq_list(row.frequencies),
                   format("%.2f", row.per_analysis_seconds[0]),
                   format("%.2f", row.per_analysis_seconds[1]),
                   format("%.2f", row.per_analysis_seconds[2]), format("%.2f", total)});
    csv.write_values({static_cast<double>(row.processes), row.per_analysis_seconds[0],
                      row.per_analysis_seconds[1], row.per_analysis_seconds[2]});
  }
  table.print();
  std::printf("series written to bench/out/fig5_strong_scaling.csv (stacked-bar data)\n");
  return 0;
}
